type breaker_state = Closed | Open | Half_open

type replica_spec = { name : string; vfs : Vfs.t; store : Index_store.t }

type replica = {
  spec : replica_spec;
  mutable state : breaker_state;
  mutable outcomes : bool list; (* newest first; true = stall or failure *)
  mutable opened_at : float;
}

type corrupt_event = { replica : string; term : string; reason : string }

type t = {
  replicas : replica array;
  dict : Inquery.Dictionary.t;
  df_of : (Inquery.Dictionary.entry -> int) option;
  n_docs : int;
  avg_doc_len : float;
  doc_len : int -> int;
  stopwords : Inquery.Stopwords.t option;
  stem : bool;
  hedge_after : float;
  window : int;
  trip_after : int;
  cooldown : float;
  on_corrupt : (replica:string -> term:string -> reason:string -> unit) option;
  corrupt_log : corrupt_event list ref; (* newest first *)
  corrupt_seen : (string, unit) Hashtbl.t; (* "replica\x00term" dedup *)
  rcache : Inquery.Ranking.ranked list Result_cache.t option;
  bcache : Util.Block_cache.t option;
  mutable now : float;
}

type result = {
  ranked : Inquery.Ranking.ranked list;
  degraded : bool;
  deadline_hit : bool;
  skipped_terms : string list;
  failed_terms : (string * string) list;
  hedged_fetches : int;
  served_by : string;
  epoch : int;
  elapsed_ms : float;
  postings_decoded : int;
  cached : bool;
}

let create ~replicas ~dict ?df_of ~n_docs ~avg_doc_len ~doc_len ?stopwords ?(stem = false)
    ?(hedge_after_ms = 60.0) ?(window = 6) ?(trip_after = 3) ?(cooldown_ms = 500.0)
    ?(result_cache_bytes = 0) ?(block_cache_bytes = 0) ?on_corrupt () =
  if replicas = [] then invalid_arg "Frontend.create: no replicas";
  let seen = Hashtbl.create 4 in
  List.iter
    (fun spec ->
      if Hashtbl.mem seen spec.name then
        invalid_arg ("Frontend.create: duplicate replica name: " ^ spec.name);
      Hashtbl.add seen spec.name ())
    replicas;
  if hedge_after_ms <= 0.0 then invalid_arg "Frontend.create: hedge_after_ms must be positive";
  if window < 1 then invalid_arg "Frontend.create: window must be at least 1";
  if trip_after < 1 || trip_after > window then
    invalid_arg "Frontend.create: trip_after must be in [1, window]";
  if cooldown_ms < 0.0 then invalid_arg "Frontend.create: cooldown_ms must be non-negative";
  if result_cache_bytes < 0 then
    invalid_arg "Frontend.create: result_cache_bytes must be non-negative";
  if block_cache_bytes < 0 then
    invalid_arg "Frontend.create: block_cache_bytes must be non-negative";
  let replicas =
    replicas
    |> List.map (fun spec -> { spec; state = Closed; outcomes = []; opened_at = 0.0 })
    |> Array.of_list
  in
  {
    replicas;
    dict;
    df_of;
    n_docs;
    avg_doc_len;
    doc_len;
    stopwords;
    stem;
    hedge_after = hedge_after_ms;
    window;
    trip_after;
    cooldown = cooldown_ms;
    on_corrupt;
    corrupt_log = ref [];
    corrupt_seen = Hashtbl.create 8;
    rcache =
      (if result_cache_bytes = 0 then None
       else
         Some
           (Result_cache.create ~capacity_bytes:result_cache_bytes ~name:"frontend.results" ()));
    bcache =
      (if block_cache_bytes = 0 then None
       else
         Some
           (Util.Block_cache.create ~capacity_bytes:block_cache_bytes ~name:"frontend.blocks" ()));
    now = 0.0;
  }

let of_prepared ?buffers ?hedge_after_ms ?window ?trip_after ?cooldown_ms ?result_cache_bytes
    ?block_cache_bytes ?on_corrupt (p : Experiment.prepared) ~names =
  let catalog = Catalog.load p.Experiment.vfs ~file:p.Experiment.catalog_file in
  let buffers =
    match buffers with Some b -> b | None -> Experiment.default_buffers p
  in
  let replicas =
    List.map
      (fun name ->
        let vfs = Vfs.create ~cost_model:(Vfs.cost_model p.Experiment.vfs) () in
        Vfs.copy_file p.Experiment.vfs p.Experiment.mneme_file ~into:vfs;
        Vfs.purge_os_cache vfs;
        let store = Mneme_backend.open_session vfs ~file:p.Experiment.mneme_file ~buffers in
        { name; vfs; store })
      names
  in
  create ~replicas ~dict:catalog.Catalog.dict ~n_docs:catalog.Catalog.n_docs
    ~avg_doc_len:(Catalog.avg_doc_length catalog)
    ~doc_len:(fun d ->
      if d < 0 || d >= Array.length catalog.Catalog.doc_lens then 0
      else catalog.Catalog.doc_lens.(d))
    ?hedge_after_ms ?window ?trip_after ?cooldown_ms ?result_cache_bytes ?block_cache_bytes
    ?on_corrupt ()

let replica_names t = Array.to_list t.replicas |> List.map (fun r -> r.spec.name)

let find t name =
  match
    Array.to_list t.replicas |> List.find_opt (fun r -> String.equal r.spec.name name)
  with
  | Some r -> r
  | None -> raise Not_found

let replica_vfs t ~name = (find t name).spec.vfs
let breaker t ~name = (find t name).state
let now_ms t = t.now

let tick t ms =
  if ms < 0.0 then invalid_arg "Frontend.tick: negative amount";
  t.now <- t.now +. ms

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* Feed one outcome to a replica's breaker.  A half-open replica lives
   or dies by its probe; a closed one trips when the rolling window
   accumulates [trip_after] bad outcomes. *)
let record t r ~bad =
  match r.state with
  | Open -> ()
  | Half_open ->
    if bad then begin
      r.state <- Open;
      r.opened_at <- t.now
    end
    else begin
      r.state <- Closed;
      r.outcomes <- []
    end
  | Closed ->
    r.outcomes <- take t.window (bad :: r.outcomes);
    let bads = List.fold_left (fun n b -> if b then n + 1 else n) 0 r.outcomes in
    if bads >= t.trip_after then begin
      r.state <- Open;
      r.opened_at <- t.now;
      r.outcomes <- []
    end

let refresh t r =
  if r.state = Open && t.now -. r.opened_at >= t.cooldown then r.state <- Half_open

(* Routing: a half-open replica gets the next fetch as its probe
   (hedging still covers the query if the probe stalls); otherwise the
   first closed replica in attach order.  The breaker alone decides who
   stops receiving traffic — a stalling replica keeps serving (hedged)
   until its window fills. *)
let route t =
  Array.iter (refresh t) t.replicas;
  let probe = ref None and closed = ref None in
  Array.iteri
    (fun i r ->
      match r.state with
      | Half_open -> if !probe = None then probe := Some i
      | Closed -> if !closed = None then closed := Some i
      | Open -> ())
    t.replicas;
  match !probe with Some _ as p -> p | None -> !closed

let hedge_candidate t ~exclude =
  let found = ref None in
  Array.iteri
    (fun i r -> if i <> exclude && r.state = Closed && !found = None then found := Some i)
    t.replicas;
  !found

let preferred t =
  match route t with
  | Some i -> t.replicas.(i).spec.name
  | None -> t.replicas.(0).spec.name

(* The epoch a cache entry is tagged with: what the replica the next
   fetch would route to is serving.  Replicas of one image publish the
   same epoch; a replica serving something else simply never gets cache
   hits for its answers. *)
let current_epoch t =
  let i = match route t with Some i -> i | None -> 0 in
  t.replicas.(i).spec.store.Index_store.epoch ()

(* The canonical result-cache key: the query re-printed after the same
   lex/stem normalisation evaluation applies, so surface variants that
   must rank identically ("Retrieval" vs its stem, a stopword present
   or absent) share one entry.  k is part of the key; the per-frontend
   evaluation preset (df_of, stem, stopword list) is fixed at create
   time, so it needs no key bytes. *)
let canonical_key t ~top_k query =
  let norm term =
    let dropped =
      match t.stopwords with
      | Some sw -> Inquery.Stopwords.is_stopword sw term
      | None -> false
    in
    (* A token no tokenizer emits, so dropped terms cannot collide with
       a real vocabulary word. *)
    if dropped then "\x00stop" else if t.stem then Inquery.Stemmer.stem term else term
  in
  let rec go q =
    match q with
    | Inquery.Query.Term s -> Inquery.Query.Term (norm s)
    | Phrase ts -> Phrase (List.map norm ts)
    | Od (n, ts) -> Od (n, List.map norm ts)
    | Uw (n, ts) -> Uw (n, List.map norm ts)
    | Syn ts -> Syn (List.map norm ts)
    | Sum qs -> Sum (List.map go qs)
    | Wsum ws -> Wsum (List.map (fun (w, c) -> (w, go c)) ws)
    | And qs -> And (List.map go qs)
    | Or qs -> Or (List.map go qs)
    | Not c -> Not (go c)
    | Max qs -> Max (List.map go qs)
  in
  Printf.sprintf "%s|k=%d" (Inquery.Query.to_string (go query)) top_k

(* Budget charge for a cached ranking: one doc id + one score per entry
   plus list/node overhead, and the key's own bytes. *)
let ranked_cost ~key ranked = (40 * List.length ranked) + String.length key + 64

let cache_tiers t =
  let result_tier =
    match t.rcache with Some rc -> [ ("result", Result_cache.stats rc) ] | None -> []
  in
  let block_tier =
    match t.bcache with Some bc -> [ ("block", Util.Block_cache.stats bc) ] | None -> []
  in
  let buffer_tier =
    let per_replica =
      Array.to_list t.replicas
      |> List.concat_map (fun r -> List.map snd (r.spec.store.Index_store.buffer_stats ()))
    in
    [ ("buffer", Mneme.Buffer_pool.merge_stats per_replica) ]
  in
  result_tier @ block_tier @ buffer_tier

let retain_cached_epochs t ~keep =
  let r = match t.rcache with Some rc -> Result_cache.retain rc ~keep | None -> 0 in
  let b = match t.bcache with Some bc -> Util.Block_cache.retain bc ~keep | None -> 0 in
  r + b

let cached_epochs t =
  let r = match t.rcache with Some rc -> Result_cache.epochs rc | None -> [] in
  let b = match t.bcache with Some bc -> Util.Block_cache.epochs bc | None -> [] in
  List.sort_uniq compare (r @ b)

(* One fetch against one replica, timed on that replica's clock.
   Corruption is kept distinct from a dead device: a corrupt segment is
   repairable from a peer and worth reporting to the repair queue. *)
let timed_fetch (r : replica) entry =
  let clk = Vfs.clock r.spec.vfs in
  let before = Vfs.Clock.snapshot clk in
  let res =
    try Ok (r.spec.store.Index_store.fetch entry) with
    | Mneme.Store.Corrupt msg -> Error (`Corrupt msg)
    | Vfs.Crash -> Error `Crashed
  in
  let after = Vfs.Clock.snapshot clk in
  (res, Vfs.Clock.wall_ms (Vfs.Clock.diff ~later:after ~earlier:before))

let err_msg = function `Corrupt msg -> msg | `Crashed -> "replica device crashed"

(* Record a corrupt fetch against its replica, deduplicated on
   (replica, term): the repair worklist, for read-repair to drain.  The
   query itself already routed (or hedged) around the damage. *)
let note_corrupt t (r : replica) ~term res =
  match res with
  | Ok _ | Error `Crashed -> ()
  | Error (`Corrupt reason) ->
    let key = r.spec.name ^ "\x00" ^ term in
    if not (Hashtbl.mem t.corrupt_seen key) then begin
      Hashtbl.add t.corrupt_seen key ();
      t.corrupt_log := { replica = r.spec.name; term; reason } :: !(t.corrupt_log);
      match t.on_corrupt with
      | Some hook -> hook ~replica:r.spec.name ~term ~reason
      | None -> ()
    end

let corrupt_fetches t = List.rev !(t.corrupt_log)

let mark_repaired t ~replica ~term =
  let key = replica ^ "\x00" ^ term in
  if Hashtbl.mem t.corrupt_seen key then begin
    Hashtbl.remove t.corrupt_seen key;
    t.corrupt_log :=
      List.filter
        (fun e -> not (String.equal e.replica replica && String.equal e.term term))
        !(t.corrupt_log);
    true
  end
  else false

let run_query ?(top_k = 100) ?deadline_ms ?floor ?plan t query =
  (match deadline_ms with
  | Some d when d <= 0.0 -> invalid_arg "Frontend.run_query: deadline must be positive"
  | _ -> ());
  let epoch_now = current_epoch t in
  (* A floor changes which documents the evaluator may return, so
     floored queries bypass the result cache in both directions. *)
  let ckey =
    match t.rcache with
    | Some _ when floor = None -> Some (canonical_key t ~top_k query)
    | _ -> None
  in
  let probe_hit =
    match (t.rcache, ckey) with
    | Some rc, Some key ->
      (* The probe races the deadline like every other step of the
         query: an already-expired budget is served the degraded-empty
         way, never from cache. *)
      let expired = match deadline_ms with Some d -> d <= 0.0 | None -> false in
      if expired then None else Result_cache.find rc ~key ~epoch:epoch_now
    | _ -> None
  in
  match probe_hit with
  | Some ranked ->
    {
      ranked;
      degraded = false;
      deadline_hit = false;
      skipped_terms = [];
      failed_terms = [];
      hedged_fetches = 0;
      served_by = preferred t;
      epoch = epoch_now;
      elapsed_ms = 0.0;
      postings_decoded = 0;
      cached = true;
    }
  | None ->
  let elapsed = ref 0.0 in
  let skipped = ref [] and failed = ref [] in
  let hedged = ref 0 in
  let deadline_hit = ref false in
  let served = Array.make (Array.length t.replicas) 0 in
  let advance ms =
    elapsed := !elapsed +. ms;
    t.now <- t.now +. ms
  in
  let skip term = if not (List.mem term !skipped) then skipped := term :: !skipped in
  let fetch entry =
    let term = entry.Inquery.Dictionary.term in
    match deadline_ms with
    | Some d when !elapsed >= d ->
      deadline_hit := true;
      skip term;
      None
    | _ -> (
      match route t with
      | None ->
        skip term;
        None
      | Some i -> (
        let r = t.replicas.(i) in
        let res, cost = timed_fetch r entry in
        served.(i) <- served.(i) + 1;
        note_corrupt t r ~term res;
        let bad = (match res with Ok _ -> cost > t.hedge_after | Error _ -> true) in
        if not bad then begin
          advance cost;
          record t r ~bad:false;
          match res with Ok b -> b | Error _ -> assert false
        end
        else
          match hedge_candidate t ~exclude:i with
          | None -> (
            advance cost;
            record t r ~bad:true;
            match res with
            | Ok b -> b
            | Error e ->
              failed := (term, err_msg e) :: !failed;
              None)
          | Some j -> (
            let h = t.replicas.(j) in
            let hres, hcost = timed_fetch h entry in
            served.(j) <- served.(j) + 1;
            note_corrupt t h ~term hres;
            incr hedged;
            (* A failed fetch is retried sequentially; a stalled one is
               raced — the query perceives whichever path finished
               first. *)
            let perceived =
              match res with
              | Error _ -> cost +. hcost
              | Ok _ -> Float.min cost (t.hedge_after +. hcost)
            in
            advance perceived;
            record t r ~bad:true;
            record t h ~bad:(match hres with Ok _ -> hcost > t.hedge_after | Error _ -> true);
            match (res, hres) with
            | Error _, Ok b -> b
            | Ok b, Ok hb -> if t.hedge_after +. hcost < cost then hb else b
            | Ok b, Error _ -> b
            | Error e, Error _ ->
              failed := (term, err_msg e) :: !failed;
              None)))
  in
  let source =
    {
      Inquery.Infnet.fetch;
      n_docs = t.n_docs;
      max_doc_id = t.n_docs - 1;
      avg_doc_len = t.avg_doc_len;
      doc_len = t.doc_len;
    }
  in
  (* Deadline checks continue inside evaluation, between candidate
     documents (i.e. between postings blocks) rather than only between
     term fetches: accrued scoring CPU is priced against the remaining
     budget and evaluation stops mid-stream once it would blow the
     deadline.  If the fetch phase already blew it, the evidence is paid
     for — rank it rather than return nothing (same degraded-partial
     contract as before). *)
  let stop_model = Vfs.cost_model t.replicas.(0).spec.vfs in
  let eval_start = ref None in
  let should_stop (s : Inquery.Infnet.stats) =
    match deadline_ms with
    | None -> false
    | Some d ->
      let start =
        match !eval_start with
        | Some v -> v
        | None ->
          eval_start := Some !elapsed;
          !elapsed
      in
      if start >= d then false
      else begin
        let cpu =
          (float_of_int s.Inquery.Infnet.postings_scored
           *. stop_model.Vfs.Cost_model.cpu_ns_per_posting /. 1.0e6)
          +. (float_of_int s.Inquery.Infnet.nodes_visited
              *. stop_model.Vfs.Cost_model.cpu_us_per_query_node /. 1.0e3)
        in
        if start +. cpu >= d then begin
          deadline_hit := true;
          true
        end
        else false
      end
  in
  let scored, stats, tk =
    Inquery.Infnet.eval_topk source t.dict ?df_of:t.df_of ?floor ?plan ?stopwords:t.stopwords
      ~stem:t.stem ~should_stop
      ?block_cache:(Option.map (fun bc -> (bc, epoch_now)) t.bcache)
      ~k:top_k query
  in
  let serving =
    let best = ref 0 in
    Array.iteri (fun i n -> if n > served.(!best) then best := i) served;
    t.replicas.(!best)
  in
  let model = Vfs.cost_model serving.spec.vfs in
  let cpu_ms =
    (float_of_int stats.Inquery.Infnet.postings_scored
     *. model.Vfs.Cost_model.cpu_ns_per_posting /. 1.0e6)
    +. (float_of_int stats.Inquery.Infnet.nodes_visited
        *. model.Vfs.Cost_model.cpu_us_per_query_node /. 1.0e3)
  in
  Vfs.Clock.charge_engine_cpu (Vfs.clock serving.spec.vfs) cpu_ms;
  advance cpu_ms;
  let skipped_terms = List.rev !skipped and failed_terms = List.rev !failed in
  let result =
    {
      ranked =
        List.map
          (fun s ->
            { Inquery.Ranking.doc = s.Inquery.Infnet.doc; score = s.Inquery.Infnet.belief })
          scored;
      degraded =
        !deadline_hit || tk.Inquery.Infnet.tk_stopped || skipped_terms <> []
        || failed_terms <> [];
      deadline_hit = !deadline_hit;
      skipped_terms;
      failed_terms;
      hedged_fetches = !hedged;
      served_by = serving.spec.name;
      epoch = serving.spec.store.Index_store.epoch ();
      elapsed_ms = !elapsed;
      postings_decoded = tk.Inquery.Infnet.tk_postings_decoded;
      cached = false;
    }
  in
  (* Fill, re-checking the deadline and coverage: a ranking the deadline
     clipped, or that lost terms to skips or failed fetches, is Partial
     and must never be replayed as a full answer.  An epoch that moved
     mid-query (the serving replica republished) is not inserted at all
     — its tag would not match what it was computed from. *)
  (match (t.rcache, ckey) with
  | Some rc, Some key when result.epoch = epoch_now ->
    let coverage = if result.degraded then Result_cache.Partial else Result_cache.Full in
    Result_cache.insert rc ~key ~epoch:result.epoch ~coverage
      ~cost:(ranked_cost ~key result.ranked)
      result.ranked
  | _ -> ());
  result

let run_query_string ?top_k ?deadline_ms ?floor ?plan t text =
  run_query ?top_k ?deadline_ms ?floor ?plan t (Inquery.Query.parse_exn text)
