type t = {
  name : string;
  fetch : Inquery.Dictionary.entry -> bytes option;
  reserve : Inquery.Dictionary.entry list -> unit -> unit;
  buffer_stats : unit -> (string * Mneme.Buffer_pool.stats) list;
  reset_buffer_stats : unit -> unit;
  file_size : unit -> int;
  epoch : unit -> int;
}

let no_reserve _entries () = ()
