(** The integrated retrieval engine: INQUERY's inference network on top
    of a pluggable {!Index_store}.

    Each query is processed the way the paper describes: the query tree
    is parsed, scanned for terms whose records are already resident
    (which are {e reserved} for the duration), evaluated term-at-a-time,
    ranked, and released.  The engine charges its simulated CPU (per
    posting scored and per query node) to the {!Vfs} clock so that
    "user CPU" and "system + I/O" components can be separated exactly as
    the paper's Tables 3 and 4 do. *)

type t

type result = {
  ranked : Inquery.Ranking.ranked list;
  postings_scored : int;
  nodes_visited : int;
  record_lookups : int;
}

val create :
  vfs:Vfs.t ->
  store:Index_store.t ->
  dict:Inquery.Dictionary.t ->
  n_docs:int ->
  ?max_doc_id:int ->
  avg_doc_len:float ->
  doc_len:(int -> int) ->
  ?stopwords:Inquery.Stopwords.t ->
  ?stem:bool ->
  ?reserve:bool ->
  ?salvage:bool ->
  ?block_cache:Util.Block_cache.t ->
  unit ->
  t
(** [max_doc_id] (default [n_docs - 1]) bounds the document id space;
    pass it explicitly when ids are sparse — e.g. an {!Ingest} session
    after deletions, where live ids range past the document count.
    [reserve] (default true) controls the paper's query-tree reservation
    scan; the ablation harness turns it off to measure its value.
    [salvage] (default true) keeps the engine answering when a record's
    segment fails its CRC32: the term is {e quarantined} (treated as
    not indexed, reported via {!quarantined}) instead of the query
    aborting with [Mneme.Store.Corrupt].
    [block_cache] shares decoded postings blocks across this engine's
    top-k queries (and with any other engine handed the same cache over
    the same index image), keyed by record locator and the session's
    published epoch — see {!Inquery.Infnet.eval_topk}. *)

val store : t -> Index_store.t

val epoch : t -> int
(** The published epoch the engine's session serves
    ({!Index_store.t.epoch}; 0 for backends without epoch
    versioning). *)

val quarantined : t -> (string * string) list
(** [(term, reason)] for every term whose inverted list is {e currently}
    quarantined by salvage mode, oldest first.  Empty when every fetch
    has been clean (or every quarantine has been healed).  A quarantined
    term's fetches short-circuit to [None] without touching the store —
    the query pays for the corrupt segment once, not on every
    evaluation. *)

type repair_ticket = {
  term : string;
  reason : string;  (** the [Corrupt] message *)
  entry : Inquery.Dictionary.entry;  (** dictionary entry whose locator names the record *)
}

val pending_repairs : t -> repair_ticket list
(** The read-repair worklist: one ticket per currently-quarantined term,
    oldest first. *)

val mark_healed : t -> term:string -> bool
(** Lift a term's quarantine after its segment has been repaired: the
    next fetch goes back to the store.  [false] if the term was not
    quarantined. *)

val heal_pending :
  t ->
  store:Mneme.Store.t ->
  sources:(string * Vfs.t) list ->
  (string * (string, string) Stdlib.result) list
(** Drain the repair worklist against the Mneme store backing this
    engine's index session: each ticket's dictionary locator is resolved
    to its physical segment, healed from the first [source] holding a
    CRC-verified copy ({!Mneme.Scrub.heal}), and un-quarantined on
    success.  Returns per-term outcomes ([Ok source] or [Error reason]);
    failed tickets stay quarantined and stay on the worklist. *)

val run_query : ?top_k:int -> t -> Inquery.Query.t -> result
(** Evaluate one parsed query ([top_k] defaults to 100 ranked
    documents). *)

val run_query_string : ?top_k:int -> t -> string -> result
(** Parse and evaluate.  Raises [Invalid_argument] on syntax errors. *)

val run_batch : t -> string list -> result list
(** The paper's batch mode: every query of a set, in order. *)

type topk_result = {
  topk_ranked : Inquery.Ranking.ranked list;
  topk_postings_scored : int;
  topk_record_lookups : int;
  topk_plan : Inquery.Planner.plan;  (** the plan that executed *)
  topk_pruned : bool;  (** a pruning plan ran (vs. exhaustive) *)
  topk_postings_total : int;
  topk_postings_decoded : int;
  topk_blocks_skipped : int;
  topk_seeks : int;
  topk_bytes_read : int;  (** record bytes actually decoded *)
  topk_blocks_read : int;  (** skip blocks freshly decoded *)
  topk_est_bytes : int;  (** planner's byte estimate for the plan *)
  topk_est_blocks : int;  (** planner's block estimate for the plan *)
}

val run_topk :
  ?audit:bool ->
  ?exhaustive:bool ->
  ?plan:Inquery.Planner.choice ->
  ?k:int ->
  t ->
  Inquery.Query.t ->
  topk_result
(** Document-at-a-time top-[k] retrieval through
    {!Inquery.Infnet.eval_topk}: the cost-based planner picks the
    cheapest applicable executor (max-score, intersection-first, or
    exhaustive) from header statistics; [plan] forces one instead.
    [audit] re-runs the exhaustive evaluator and raises
    {!Inquery.Infnet.Audit_mismatch} on any divergence; [exhaustive]
    forces the exhaustive plan (the benchmark baseline).  CPU is
    charged to the {!Vfs} clock per posting actually scored, so pruning
    shows up in the simulated timings too. *)

val run_topk_string :
  ?audit:bool ->
  ?exhaustive:bool ->
  ?plan:Inquery.Planner.choice ->
  ?k:int ->
  t ->
  string ->
  topk_result
(** Parse and evaluate.  Raises [Invalid_argument] on syntax errors. *)
