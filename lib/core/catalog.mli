(** The persistent system catalog: everything a fresh INQUERY session
    needs besides the inverted file itself.

    The paper's INQUERY keeps the hash dictionary "entirely in main
    memory during query processing" — meaning it is read from disk when
    the system starts.  A catalog file holds the serialised dictionary
    (term → id, df, cf, and the Mneme object id locator) plus the
    per-document lengths and collection totals the belief function
    needs.  Sessions opened by {!Experiment} load the catalog before
    timing begins, exactly where the paper's measurement window starts
    ("after all files had been opened and any initialization was
    complete"). *)

type t = {
  dict : Inquery.Dictionary.t;
  n_docs : int;
  doc_lens : int array;  (** indexed by document id; 0 for absent ids *)
  collection_bytes : int;
}

val of_indexer : Inquery.Indexer.t -> t
(** Snapshot a finished build. *)

val avg_doc_length : t -> float
val doc_length : t -> int -> float option
(** None when the id is out of range. *)

val save : Vfs.t -> file:string -> t -> unit
(** Write (replacing any previous contents). *)

val load : Vfs.t -> file:string -> t
(** Raises [Failure] on a missing or corrupt file. *)

val verify_records :
  t -> fetch:(Inquery.Dictionary.entry -> bytes option) -> (string * string) list
(** Fsck pass over the index itself: fetch every dictionary entry's
    record and validate it deeply ({!Inquery.Postings.validate} — header
    consistency, skip-table invariants, gap monotonicity), then
    cross-check the record's df/cf against the dictionary.  Returns
    [(term, problem)] pairs, empty when clean; store-level exceptions
    from [fetch] become problems — never raises. *)
