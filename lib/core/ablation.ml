type ctx = {
  prepared : Experiment.prepared;
  queries : string list;
  mutable variant_counter : int;
}

let ablation_model scale =
  Collections.Docmodel.make ~name:"ablation"
    ~n_docs:(max 256 (int_of_float (3000.0 *. scale)))
    ~core_vocab:20000 ~mean_doc_len:200.0 ~hapax_prob:0.012 ~seed:311 ()

let create ?(progress = fun _ -> ()) ?(scale = 1.0) () =
  let model = ablation_model scale in
  let prepared = Experiment.prepare ~progress model in
  let spec =
    Collections.Querygen.make ~set_name:"ablation" ~n_queries:40 ~mean_terms:10.0 ~pool_size:120
      ~pool_top_bias:300 ~pool_skew:1.0 ~fresh_prob:0.15 ~phrase_prob:0.05 ~seed:313 ()
  in
  { prepared; queries = Collections.Querygen.generate model spec; variant_counter = 0 }

type variant_stats = {
  io_inputs : int;
  accesses : int;
  lookups : int;
  kbytes : float;
  sys_io_s : float;
  file_kb : int;
  large_hit_rate : float;
}

(* Build a fresh Mneme variant of the ablation collection and run the
   query set against it.  Rebuilding per row keeps the dictionary
   locators consistent with the store being measured. *)
let run_variant ctx ?thresholds ?policies ?policy ?(reserve = true) ?buffers () =
  ctx.variant_counter <- ctx.variant_counter + 1;
  let p = ctx.prepared in
  let vfs = p.Experiment.vfs in
  let file = Printf.sprintf "ablation-%d.mneme" ctx.variant_counter in
  let store =
    Mneme_backend.build ?thresholds ?policies vfs ~file ~dict:p.Experiment.dict
      (Inquery.Indexer.to_records p.Experiment.indexer)
  in
  let buffers =
    match buffers with
    | Some b -> b
    | None -> Buffer_sizing.compute ~largest_record:p.Experiment.largest_record ()
  in
  Vfs.purge_os_cache vfs;
  let session = Mneme_backend.open_session ?policy vfs ~file ~buffers in
  let engine =
    Engine.create ~vfs ~store:session ~dict:p.Experiment.dict
      ~n_docs:p.Experiment.model.Collections.Docmodel.n_docs
      ~avg_doc_len:(Inquery.Indexer.avg_doc_length p.Experiment.indexer)
      ~doc_len:(Inquery.Indexer.doc_length p.Experiment.indexer)
      ~reserve ()
  in
  let clock = Vfs.clock vfs in
  let c0 = Vfs.counters vfs in
  let k0 = Vfs.Clock.snapshot clock in
  let results = Engine.run_batch engine ctx.queries in
  let k1 = Vfs.Clock.snapshot clock in
  let c1 = Vfs.counters vfs in
  let io = Vfs.diff_counters ~later:c1 ~earlier:c0 in
  let interval = Vfs.Clock.diff ~later:k1 ~earlier:k0 in
  let lookups = List.fold_left (fun acc r -> acc + r.Engine.record_lookups) 0 results in
  let large_hit_rate =
    match List.assoc_opt "large" (session.Index_store.buffer_stats ()) with
    | Some s when s.Mneme.Buffer_pool.refs > 0 ->
      float_of_int s.Mneme.Buffer_pool.hits /. float_of_int s.Mneme.Buffer_pool.refs
    | Some _ | None -> 0.0
  in
  (* Release the variant's file space in the simulated FS. *)
  let stats =
    {
      io_inputs = io.Vfs.disk_inputs;
      accesses = io.Vfs.file_accesses;
      lookups;
      kbytes = float_of_int io.Vfs.bytes_read /. 1024.0;
      sys_io_s = Vfs.Clock.sys_io_ms interval /. 1000.0;
      file_kb = Mneme.Store.file_size store / 1024;
      large_hit_rate;
    }
  in
  Vfs.delete_file vfs file;
  stats

let a_of s = if s.lookups = 0 then 0.0 else float_of_int s.accesses /. float_of_int s.lookups

let policy_table ctx =
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Policy", Util.Tables.Left);
          ("Reserve", Util.Tables.Left);
          ("I", Util.Tables.Right);
          ("A", Util.Tables.Right);
          ("B (KB)", Util.Tables.Right);
          ("Large Hit Rate", Util.Tables.Right);
        ]
  in
  (* A tight large buffer makes replacement decisions matter. *)
  let tight =
    Buffer_sizing.with_large
      (Buffer_sizing.compute ~largest_record:ctx.prepared.Experiment.largest_record ())
      (ctx.prepared.Experiment.largest_record * 5 / 4)
  in
  List.iter
    (fun (name, policy) ->
      List.iter
        (fun reserve ->
          let s = run_variant ctx ~policy ~reserve ~buffers:tight () in
          Util.Tables.add_row t
            [
              name;
              (if reserve then "on" else "off");
              string_of_int s.io_inputs;
              Util.Tables.fmt_float (a_of s);
              Util.Tables.fmt_float ~decimals:0 s.kbytes;
              Util.Tables.fmt_float s.large_hit_rate;
            ])
        [ true; false ])
    [ ("lru", Mneme.Buffer_pool.Lru); ("fifo", Mneme.Buffer_pool.Fifo);
      ("clock", Mneme.Buffer_pool.Clock) ];
  t

let medium_pseg_table ctx =
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Medium pseg (KB)", Util.Tables.Right);
          ("I", Util.Tables.Right);
          ("A", Util.Tables.Right);
          ("B (KB)", Util.Tables.Right);
          ("File (KB)", Util.Tables.Right);
          ("Sys+IO (s)", Util.Tables.Right);
        ]
  in
  List.iter
    (fun pseg_size ->
      let medium = Mneme.Policy.make ~name:"medium" ~pseg_size ~align:pseg_size () in
      let policies = (Mneme.Policy.small, medium, Mneme.Policy.large) in
      let s = run_variant ctx ~policies () in
      Util.Tables.add_row t
        [
          string_of_int (pseg_size / 1024);
          string_of_int s.io_inputs;
          Util.Tables.fmt_float (a_of s);
          Util.Tables.fmt_float ~decimals:0 s.kbytes;
          string_of_int s.file_kb;
          Util.Tables.fmt_float s.sys_io_s;
        ])
    [ 2048; 4096; 8192; 16384; 32768 ];
  t

let threshold_table ctx =
  let t =
    Util.Tables.create
      ~columns:
        [
          ("small <= (bytes)", Util.Tables.Right);
          ("large > (bytes)", Util.Tables.Right);
          ("I", Util.Tables.Right);
          ("A", Util.Tables.Right);
          ("B (KB)", Util.Tables.Right);
          ("File (KB)", Util.Tables.Right);
        ]
  in
  List.iter
    (fun (small_max, large_min) ->
      let thresholds = { Partition.small_max; large_min } in
      (* The small pool's fixed slots must hold the largest record the
         threshold routes to it (plus the 4-byte size field). *)
      let policies =
        if small_max <= 12 then Mneme_backend.default_policies
        else begin
          let slot_size = small_max + 4 in
          let need = 6 + (255 * slot_size) in
          let rec pow2 n = if n >= need then n else pow2 (n * 2) in
          let small =
            Mneme.Policy.make ~name:"small" ~pseg_size:(pow2 4096)
              ~layout:(Mneme.Policy.Fixed_slots { slot_size })
              ~align:4096 ()
          in
          (small, Mneme.Policy.medium, Mneme.Policy.large)
        end
      in
      let s = run_variant ctx ~thresholds ~policies () in
      Util.Tables.add_row t
        [
          string_of_int small_max;
          string_of_int (large_min - 1);
          string_of_int s.io_inputs;
          Util.Tables.fmt_float (a_of s);
          Util.Tables.fmt_float ~decimals:0 s.kbytes;
          string_of_int s.file_kb;
        ])
    [ (12, 4097); (0, 4097); (64, 4097); (12, 1025); (12, 16385); (12, 257) ];
  t

let daat_table ctx =
  let p = ctx.prepared in
  let vfs = p.Experiment.vfs in
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Strategy", Util.Tables.Left);
          ("Lookups", Util.Tables.Right);
          ("Postings", Util.Tables.Right);
          ("Docs Scored", Util.Tables.Right);
          ("Belief Array Cells", Util.Tables.Right);
        ]
  in
  let buffers = Experiment.default_buffers p in
  let session = Mneme_backend.open_session vfs ~file:p.Experiment.mneme_file ~buffers in
  let source =
    {
      Inquery.Infnet.fetch = session.Index_store.fetch;
      n_docs = p.Experiment.model.Collections.Docmodel.n_docs;
      max_doc_id = p.Experiment.model.Collections.Docmodel.n_docs - 1;
      avg_doc_len = Inquery.Indexer.avg_doc_length p.Experiment.indexer;
      doc_len = Inquery.Indexer.doc_length p.Experiment.indexer;
    }
  in
  let parsed = List.map Inquery.Query.parse_exn ctx.queries in
  let taat_lookups = ref 0 and taat_postings = ref 0 and taat_cells = ref 0 in
  List.iter
    (fun q ->
      let beliefs, stats = Inquery.Infnet.eval source p.Experiment.dict q in
      taat_lookups := !taat_lookups + stats.Inquery.Infnet.record_lookups;
      taat_postings := !taat_postings + stats.Inquery.Infnet.postings_scored;
      taat_cells := !taat_cells + Array.length beliefs)
    parsed;
  Util.Tables.add_row t
    [
      "term-at-a-time";
      string_of_int !taat_lookups;
      string_of_int !taat_postings;
      string_of_int !taat_cells;
      string_of_int !taat_cells;
    ];
  let daat_lookups = ref 0 and daat_postings = ref 0 and daat_scored = ref 0 in
  List.iter
    (fun q ->
      let scored, stats = Inquery.Infnet.eval_daat source p.Experiment.dict q in
      daat_lookups := !daat_lookups + stats.Inquery.Infnet.record_lookups;
      daat_postings := !daat_postings + stats.Inquery.Infnet.postings_scored;
      daat_scored := !daat_scored + List.length scored)
    parsed;
  Util.Tables.add_row t
    [
      "document-at-a-time";
      string_of_int !daat_lookups;
      string_of_int !daat_postings;
      string_of_int !daat_scored;
      "0";
    ];
  t

let update_table ?(progress = fun _ -> ()) ?(adds = 300) ?(deletes = 60) () =
  let model =
    Collections.Docmodel.make ~name:"update" ~n_docs:600 ~core_vocab:6000 ~mean_doc_len:120.0
      ~hapax_prob:0.012 ~seed:401 ()
  in
  progress "[ablation] update micro-study";
  let fresh_docs =
    let source =
      Collections.Docmodel.make ~name:"update-fresh" ~n_docs:adds ~core_vocab:6000
        ~mean_doc_len:120.0 ~hapax_prob:0.012 ~seed:402 ()
    in
    Collections.Synth.documents source
    |> Seq.map Collections.Synth.document_text
    |> List.of_seq
  in
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Backend", Util.Tables.Left);
          ("Add (ms/doc)", Util.Tables.Right);
          ("Delete (ms/doc)", Util.Tables.Right);
          ("File Growth (KB)", Util.Tables.Right);
          ("Stranded (KB)", Util.Tables.Right);
        ]
  in
  List.iter
    (fun backend ->
      let prepared = Experiment.prepare model in
      let vfs = prepared.Experiment.vfs in
      let doc_lengths =
        List.init model.Collections.Docmodel.n_docs (fun d ->
            (d, Inquery.Indexer.doc_length prepared.Experiment.indexer d))
      in
      let live =
        match backend with
        | `Btree ->
          let tree = Btree.open_existing vfs prepared.Experiment.btree_file in
          Live_index.wrap_btree vfs ~tree ~dict:prepared.Experiment.dict ~doc_lengths
        | `Mneme ->
          let store = Mneme.Store.open_existing vfs prepared.Experiment.mneme_file in
          List.iter
            (fun name ->
              Mneme.Store.attach_buffer (Mneme.Store.pool store name)
                (Mneme.Buffer_pool.create ~name ~capacity:262_144 ()))
            [ "small"; "medium"; "large" ];
          Live_index.wrap_mneme vfs ~store ~dict:prepared.Experiment.dict ~doc_lengths
      in
      let clock = Vfs.clock vfs in
      let space0 = Live_index.space live in
      let k0 = Vfs.Clock.snapshot clock in
      List.iter (fun text -> ignore (Live_index.add_document live text)) fresh_docs;
      let k1 = Vfs.Clock.snapshot clock in
      for d = 0 to deletes - 1 do
        ignore (Live_index.delete_document live (d * 7 mod model.Collections.Docmodel.n_docs))
      done;
      let k2 = Vfs.Clock.snapshot clock in
      let space1 = Live_index.space live in
      let add_ms =
        Vfs.Clock.sys_io_ms (Vfs.Clock.diff ~later:k1 ~earlier:k0) /. float_of_int adds
      in
      let del_ms =
        Vfs.Clock.sys_io_ms (Vfs.Clock.diff ~later:k2 ~earlier:k1) /. float_of_int deletes
      in
      Util.Tables.add_row t
        [
          Live_index.backend_name live;
          Util.Tables.fmt_float add_ms;
          Util.Tables.fmt_float del_ms;
          string_of_int
            ((space1.Live_index.file_bytes - space0.Live_index.file_bytes) / 1024);
          string_of_int (space1.Live_index.reclaimable_bytes / 1024);
        ])
    [ `Btree; `Mneme ];
  t

(* What if INQUERY's B-tree package had cached more index levels?  The
   paper: "while these features could be added to the B-tree package to
   achieve a similar improvement, it is exactly this type of effort we
   are trying to avoid".  Here the effort is one parameter. *)
let btree_cache_table ctx =
  let p = ctx.prepared in
  let vfs = p.Experiment.vfs in
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Cached Levels", Util.Tables.Right);
          ("I", Util.Tables.Right);
          ("A", Util.Tables.Right);
          ("B (KB)", Util.Tables.Right);
          ("Nodes Held", Util.Tables.Right);
          ("Sys+IO (s)", Util.Tables.Right);
        ]
  in
  List.iter
    (fun cached_levels ->
      Vfs.purge_os_cache vfs;
      (* Open the tree directly so the number of held node pages can be
         reported alongside the I/O savings it buys. *)
      let tree = Btree.open_existing ~cached_levels vfs p.Experiment.btree_file in
      let session =
        {
          Index_store.name = "btree";
          fetch = (fun entry -> Btree.lookup tree entry.Inquery.Dictionary.id);
          reserve = Index_store.no_reserve;
          buffer_stats = (fun () -> []);
          reset_buffer_stats = (fun () -> ());
          file_size = (fun () -> Btree.file_size tree);
          epoch = (fun () -> 0);
        }
      in
      let engine =
        Engine.create ~vfs ~store:session ~dict:p.Experiment.dict
          ~n_docs:p.Experiment.model.Collections.Docmodel.n_docs
          ~avg_doc_len:(Inquery.Indexer.avg_doc_length p.Experiment.indexer)
          ~doc_len:(Inquery.Indexer.doc_length p.Experiment.indexer)
          ()
      in
      let clock = Vfs.clock vfs in
      let c0 = Vfs.counters vfs in
      let k0 = Vfs.Clock.snapshot clock in
      let results = Engine.run_batch engine ctx.queries in
      let k1 = Vfs.Clock.snapshot clock in
      let c1 = Vfs.counters vfs in
      let io = Vfs.diff_counters ~later:c1 ~earlier:c0 in
      let lookups = List.fold_left (fun acc r -> acc + r.Engine.record_lookups) 0 results in
      let a = if lookups = 0 then 0.0 else float_of_int io.Vfs.file_accesses /. float_of_int lookups in
      Util.Tables.add_row t
        [
          string_of_int cached_levels;
          string_of_int io.Vfs.disk_inputs;
          Util.Tables.fmt_float a;
          Util.Tables.fmt_float ~decimals:0 (float_of_int io.Vfs.bytes_read /. 1024.0);
          string_of_int (Btree.cached_nodes tree);
          Util.Tables.fmt_float (Vfs.Clock.sys_io_ms (Vfs.Clock.diff ~later:k1 ~earlier:k0) /. 1000.0);
        ])
    [ 0; 1; 2; 3 ];
  t

(* The paper's future-work claim, measured: "we expect that the addition
   of these services [transactions, recovery] would not introduce
   excessive overhead".  Build the same store with and without the redo
   journal (committing in batches during construction) and compare both
   build cost and query cost. *)
let journal_table ctx =
  let p = ctx.prepared in
  let vfs = p.Experiment.vfs in
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Configuration", Util.Tables.Left);
          ("Build Writes", Util.Tables.Right);
          ("Build MB Written", Util.Tables.Right);
          ("Build Sys+IO (s)", Util.Tables.Right);
          ("Query A", Util.Tables.Right);
          ("Query Sys+IO (s)", Util.Tables.Right);
        ]
  in
  let build_and_query ~journaled =
    ctx.variant_counter <- ctx.variant_counter + 1;
    let file = Printf.sprintf "journal-%d.mneme" ctx.variant_counter in
    let log_file = file ^ ".jnl" in
    let clock = Vfs.clock vfs in
    let c0 = Vfs.counters vfs in
    let k0 = Vfs.Clock.snapshot clock in
    let store = Mneme.Store.create vfs file in
    let pools =
      List.map
        (fun policy ->
          let pool = Mneme.Store.add_pool store policy in
          Mneme.Store.attach_buffer pool
            (Mneme.Buffer_pool.create ~name:policy.Mneme.Policy.name ~capacity:0 ());
          (policy.Mneme.Policy.name, pool))
        [ Mneme.Policy.small; Mneme.Policy.medium; Mneme.Policy.large ]
    in
    if journaled then Mneme.Store.enable_journal store ~log_file;
    let allocate_all records =
      Seq.iter
        (fun (term_id, record) ->
          let cls = Partition.classify (Bytes.length record) in
          let pool = List.assoc (Partition.class_name cls) pools in
          let oid = Mneme.Store.allocate pool record in
          match Inquery.Dictionary.find_by_id p.Experiment.dict term_id with
          | Some entry -> entry.Inquery.Dictionary.locator <- oid
          | None -> ())
        records
    in
    let records = Inquery.Indexer.to_records p.Experiment.indexer in
    if journaled then begin
      (* Commit in batches of ~2000 records, then a final transaction
         around finalize — a realistic incremental-build protocol. *)
      let batch = ref [] and n = ref 0 in
      let flush () =
        if !batch <> [] then begin
          let chunk = List.rev !batch in
          batch := [];
          n := 0;
          Mneme.Store.transact store (fun () -> allocate_all (List.to_seq chunk))
        end
      in
      Seq.iter
        (fun r ->
          batch := r :: !batch;
          incr n;
          if !n >= 2000 then flush ())
        records;
      flush ();
      Mneme.Store.transact store (fun () -> Mneme.Store.finalize store)
    end
    else begin
      allocate_all records;
      Mneme.Store.finalize store
    end;
    let k1 = Vfs.Clock.snapshot clock in
    let c1 = Vfs.counters vfs in
    let build_io = Vfs.diff_counters ~later:c1 ~earlier:c0 in
    let build_s = Vfs.Clock.sys_io_ms (Vfs.Clock.diff ~later:k1 ~earlier:k0) /. 1000.0 in
    (* Query phase: fresh session over the built file (queries never
       write, so the journal is idle). *)
    Vfs.purge_os_cache vfs;
    let buffers = Buffer_sizing.compute ~largest_record:p.Experiment.largest_record () in
    let session = Mneme_backend.open_session vfs ~file ~buffers in
    let engine =
      Engine.create ~vfs ~store:session ~dict:p.Experiment.dict
        ~n_docs:p.Experiment.model.Collections.Docmodel.n_docs
        ~avg_doc_len:(Inquery.Indexer.avg_doc_length p.Experiment.indexer)
        ~doc_len:(Inquery.Indexer.doc_length p.Experiment.indexer)
        ()
    in
    let qc0 = Vfs.counters vfs in
    let qk0 = Vfs.Clock.snapshot clock in
    let results = Engine.run_batch engine ctx.queries in
    let qk1 = Vfs.Clock.snapshot clock in
    let qc1 = Vfs.counters vfs in
    let qio = Vfs.diff_counters ~later:qc1 ~earlier:qc0 in
    let lookups = List.fold_left (fun acc r -> acc + r.Engine.record_lookups) 0 results in
    let a = if lookups = 0 then 0.0 else float_of_int qio.Vfs.file_accesses /. float_of_int lookups in
    let query_s = Vfs.Clock.sys_io_ms (Vfs.Clock.diff ~later:qk1 ~earlier:qk0) /. 1000.0 in
    Util.Tables.add_row t
      [
        (if journaled then "journaled (2000-record batches)" else "no journal");
        string_of_int build_io.Vfs.disk_outputs;
        Util.Tables.fmt_float (float_of_int build_io.Vfs.bytes_written /. 1048576.0);
        Util.Tables.fmt_float build_s;
        Util.Tables.fmt_float a;
        Util.Tables.fmt_float query_s;
      ];
    Vfs.delete_file vfs file;
    Vfs.delete_file vfs log_file
  in
  build_and_query ~journaled:false;
  build_and_query ~journaled:true;
  t


(* Zobel/Moffat/Sacks-Davis line of work: how much does the coding
   scheme matter?  Re-encode every inverted record's gap stream under
   each scheme and compare total index volume. *)
let compression_table ctx =
  let p = ctx.prepared in
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Scheme", Util.Tables.Left);
          ("Index KB", Util.Tables.Right);
          ("vs 32-bit ints", Util.Tables.Right);
          ("vs v-byte", Util.Tables.Right);
        ]
  in
  (* Per record, the gap streams are kept separate: document gaps (whose
     distribution the Golomb parameter is tuned to), and the tf/position
     stream. *)
  let streams =
    Inquery.Indexer.to_records p.Experiment.indexer
    |> Seq.map (fun (_, record) ->
           let decoded = Inquery.Postings.decode record in
           let df = List.length decoded in
           let doc_gaps = ref [] and rest = ref [] in
           let last_doc = ref (-1) in
           List.iter
             (fun dp ->
               let doc = dp.Inquery.Postings.doc in
               doc_gaps := (doc - !last_doc) :: !doc_gaps;
               last_doc := doc;
               rest := List.length dp.Inquery.Postings.positions :: !rest;
               let last_pos = ref (-1) in
               List.iter
                 (fun pos ->
                   rest := (pos - !last_pos) :: !rest;
                   last_pos := pos)
                 dp.Inquery.Postings.positions)
             decoded;
           (df, Bytes.length record, List.rev !doc_gaps, List.rev !rest))
    |> List.of_seq
  in
  let n_docs = p.Experiment.model.Collections.Docmodel.n_docs in
  let total_values =
    List.fold_left (fun acc (_, _, dg, r) -> acc + List.length dg + List.length r) 0 streams
  in
  let uncompressed = total_values * 4 in
  let vbyte_total = List.fold_left (fun acc (_, vb, _, _) -> acc + vb) 0 streams in
  let bit_total ~doc_scheme_of ~rest_scheme =
    let bits =
      List.fold_left
        (fun acc (df, _, doc_gaps, rest) ->
          let doc_scheme = doc_scheme_of df in
          let acc =
            List.fold_left (fun acc g -> acc + Util.Codes.bit_size doc_scheme g) acc doc_gaps
          in
          List.fold_left (fun acc g -> acc + Util.Codes.bit_size rest_scheme g) acc rest)
        0 streams
    in
    (bits + 7) / 8
  in
  let rows =
    [
      ("32-bit ints", uncompressed);
      ("v-byte (INQUERY)", vbyte_total);
      ( "Elias gamma",
        bit_total ~doc_scheme_of:(fun _ -> Util.Codes.Gamma) ~rest_scheme:Util.Codes.Gamma );
      ( "Elias delta",
        bit_total ~doc_scheme_of:(fun _ -> Util.Codes.Delta_code) ~rest_scheme:Util.Codes.Delta_code );
      ( "Golomb gaps + gamma",
        bit_total
          ~doc_scheme_of:(fun df ->
            Util.Codes.Golomb (Util.Codes.golomb_parameter ~n_docs ~df))
          ~rest_scheme:Util.Codes.Gamma );
    ]
  in
  List.iter
    (fun (name, bytes) ->
      Util.Tables.add_row t
        [
          name;
          string_of_int (bytes / 1024);
          Util.Tables.fmt_pct (float_of_int bytes /. float_of_int uncompressed);
          Util.Tables.fmt_pct (float_of_int bytes /. float_of_int vbyte_total);
        ])
    rows;
  t

(* Signature files vs the inverted file, on conjunctive queries — the
   comparison the paper's related work points at (Faloutsos' survey)
   but does not run. *)
let signature_table ctx =
  let p = ctx.prepared in
  let vfs = p.Experiment.vfs in
  let model = p.Experiment.model in
  let n_docs = model.Collections.Docmodel.n_docs in
  (* Conjunctive queries: pairs of popular terms. *)
  let queries =
    List.init 30 (fun i ->
        [ Collections.Synth.core_term ~rank:(1 + (i * 3 mod 150));
          Collections.Synth.core_term ~rank:(2 + (i * 7 mod 150)) ])
  in
  (* Ground truth and inverted-file cost via the Mneme session. *)
  let buffers = Experiment.default_buffers p in
  let session = Mneme_backend.open_session vfs ~file:p.Experiment.mneme_file ~buffers in
  let docs_of_term term =
    match Inquery.Dictionary.find p.Experiment.dict term with
    | None -> []
    | Some entry -> (
      match session.Index_store.fetch entry with
      | None -> []
      | Some record ->
        Inquery.Postings.fold_docs record ~init:[] ~f:(fun acc ~doc ~tf:_ -> doc :: acc)
        |> List.rev)
    in
  let intersect a b =
    let set = Hashtbl.create (List.length a) in
    List.iter (fun d -> Hashtbl.replace set d ()) a;
    List.filter (Hashtbl.mem set) b
  in
  let truth = List.map (fun terms ->
      match List.map docs_of_term terms with
      | [] -> []
      | first :: rest -> List.fold_left intersect first rest)
      queries
  in
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Method", Util.Tables.Left);
          ("File KB", Util.Tables.Right);
          ("KB read / query", Util.Tables.Right);
          ("Candidates", Util.Tables.Right);
          ("True Matches", Util.Tables.Right);
          ("False Drop %", Util.Tables.Right);
        ]
  in
  let true_total = List.fold_left (fun acc l -> acc + List.length l) 0 truth in
  (* Inverted file row. *)
  let before = (Vfs.counters vfs).Vfs.bytes_read in
  let inv_candidates =
    List.fold_left
      (fun acc terms ->
        match List.map docs_of_term terms with
        | [] -> acc
        | first :: rest -> acc + List.length (List.fold_left intersect first rest))
      0 queries
  in
  let inv_read = (Vfs.counters vfs).Vfs.bytes_read - before in
  Util.Tables.add_row t
    [
      "inverted file (Mneme)";
      string_of_int (p.Experiment.mneme_size / 1024);
      Util.Tables.fmt_float (float_of_int inv_read /. 1024.0 /. float_of_int (List.length queries));
      string_of_int inv_candidates;
      string_of_int true_total;
      "0%";
    ];
  (* Signature rows.  Width sized for the collection's long documents. *)
  let doc_terms () =
    Collections.Synth.documents model |> Seq.map (fun d -> (d.Collections.Synth.id, d.Collections.Synth.terms))
  in
  List.iter
    (fun (label, organisation, file) ->
      let sf =
        Inquery.Sigfile.build vfs ~file ~width:4096 ~k:6 ~organisation ~n_docs (doc_terms ())
      in
      let before = (Vfs.counters vfs).Vfs.bytes_read in
      let cand_total =
        List.fold_left
          (fun acc terms -> acc + List.length (Inquery.Sigfile.candidates sf terms))
          0 queries
      in
      let read = (Vfs.counters vfs).Vfs.bytes_read - before in
      let false_drops = cand_total - true_total in
      Util.Tables.add_row t
        [
          label;
          string_of_int (Inquery.Sigfile.file_size sf / 1024);
          Util.Tables.fmt_float (float_of_int read /. 1024.0 /. float_of_int (List.length queries));
          string_of_int cand_total;
          string_of_int true_total;
          Util.Tables.fmt_pct
            (if cand_total = 0 then 0.0 else float_of_int false_drops /. float_of_int cand_total);
        ];
      Vfs.delete_file vfs file)
    [
      ("signature, sequential", Inquery.Sigfile.Sequential, "abl-seq.sig");
      ("signature, bit-sliced", Inquery.Sigfile.Bit_sliced, "abl-sl.sig");
    ];
  t


(* Seek-aware disk model: the default calibration charges every block
   read the same 9 ms (seek amortised in).  Splitting seek from transfer
   (RZ58-style: ~12 ms after a head move, ~2 ms sequential) rewards
   contiguous layout — Mneme's aligned segments more than the B-tree's
   scattered node pages. *)
let seek_model_table ?(progress = fun _ -> ()) () =
  let model =
    Collections.Docmodel.make ~name:"seek" ~n_docs:1500 ~core_vocab:12000 ~mean_doc_len:180.0
      ~hapax_prob:0.012 ~seed:331 ()
  in
  let spec =
    Collections.Querygen.make ~set_name:"seek" ~n_queries:30 ~mean_terms:10.0 ~pool_size:100
      ~pool_top_bias:250 ~seed:333 ()
  in
  let queries = Collections.Querygen.generate model spec in
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Disk model", Util.Tables.Left);
          ("Version", Util.Tables.Left);
          ("I", Util.Tables.Right);
          ("Sys+IO (s)", Util.Tables.Right);
          ("Improvement vs B-tree", Util.Tables.Right);
        ]
  in
  List.iter
    (fun (label, cost_model) ->
      progress (Printf.sprintf "[ablation] seek model: %s" label);
      let prepared = Experiment.prepare ~cost_model model in
      let runs =
        List.map
          (fun v -> (v, Experiment.run_query_set prepared v ~queries))
          [ Experiment.Btree; Experiment.Mneme_no_cache; Experiment.Mneme_cache ]
      in
      let btree_s =
        match runs with (_, r) :: _ -> r.Experiment.sys_io_s | [] -> assert false
      in
      List.iter
        (fun (v, r) ->
          Util.Tables.add_row t
            [
              label;
              Experiment.version_name v;
              string_of_int r.Experiment.io_inputs;
              Util.Tables.fmt_float r.Experiment.sys_io_s;
              Util.Tables.fmt_pct
                (if btree_s <= 0.0 then 0.0 else (btree_s -. r.Experiment.sys_io_s) /. btree_s);
            ])
        runs)
    [
      ("flat 9 ms/block (paper calibration)", Vfs.Cost_model.default);
      ( "seek 12 ms + sequential 2 ms",
        Vfs.Cost_model.create ~disk_read_ms:12.0 ~disk_seq_read_ms:2.0 () );
    ];
  t

let all ctx =
  [
    ("Ablation: replacement policy x reservation (tight large buffer)", policy_table ctx);
    ("Ablation: medium physical-segment size", medium_pseg_table ctx);
    ("Ablation: partition thresholds", threshold_table ctx);
    ("Ablation: term-at-a-time vs document-at-a-time", daat_table ctx);
    ("Ablation: dynamic update micro-study", update_table ());
    ("Ablation: journaling overhead (transactions + recovery)", journal_table ctx);
    ("Ablation: B-tree index-node cache depth", btree_cache_table ctx);
    ("Ablation: posting compression schemes", compression_table ctx);
    ("Ablation: inverted file vs signature file (conjunctive queries)", signature_table ctx);
    ("Ablation: seek-aware disk model", seek_model_table ());
  ]
