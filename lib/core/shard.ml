type policy = Fail_fast | Best_effort of float

type shard = {
  sh_name : string;
  sh_lo : int;
  sh_hi : int; (* exclusive *)
  sh_frontend : Frontend.t;
}

type t = {
  shards : shard array;
  policy : policy;
  retries : int;
  backoff : float;
  global_bound : bool;
  docs_total : int;
}

let create ?(shard_replicas = 2) ?(policy = Best_effort 1.0) ?(retries = 1)
    ?(backoff_ms = 600.0) ?(global_bound = true) ?hedge_after_ms ?window ?trip_after
    ?cooldown_ms ?buffers ~shards (p : Experiment.prepared) =
  if shards < 1 then invalid_arg "Shard.create: shards must be positive";
  if shard_replicas < 1 then invalid_arg "Shard.create: shard_replicas must be positive";
  if retries < 0 then invalid_arg "Shard.create: retries must be non-negative";
  if backoff_ms < 0.0 then invalid_arg "Shard.create: backoff_ms must be non-negative";
  (match policy with
  | Best_effort f when not (f >= 0.0 && f <= 1.0) ->
    invalid_arg "Shard.create: Best_effort fraction outside [0, 1]"
  | Best_effort _ | Fail_fast -> ());
  let catalog = Catalog.load p.Experiment.vfs ~file:p.Experiment.catalog_file in
  let n_docs = catalog.Catalog.n_docs in
  if shards > n_docs then invalid_arg "Shard.create: more shards than documents";
  (* Global statistics: every shard ranks under these, never its own
     slice's, so per-document beliefs match the unsharded index bit for
     bit. *)
  let global_dict = catalog.Catalog.dict in
  let df_of entry =
    match Inquery.Dictionary.find global_dict entry.Inquery.Dictionary.term with
    | Some ge -> ge.Inquery.Dictionary.df
    | None -> entry.Inquery.Dictionary.df
  in
  let doc_lens = catalog.Catalog.doc_lens in
  let doc_len d = if d < 0 || d >= Array.length doc_lens then 0 else doc_lens.(d) in
  let avg_doc_len = Catalog.avg_doc_length catalog in
  let cost_model = Vfs.cost_model p.Experiment.vfs in
  let make_shard i =
    let lo = i * n_docs / shards and hi = (i + 1) * n_docs / shards in
    let name = Printf.sprintf "shard%d" i in
    (* A full store of the slice: documents keep their global ids. *)
    let indexer = Inquery.Indexer.create () in
    Seq.iter
      (fun (d : Collections.Synth.doc) ->
        if d.Collections.Synth.id >= lo && d.Collections.Synth.id < hi then
          Inquery.Indexer.add_document_terms indexer ~doc_id:d.Collections.Synth.id
            ~bytes:d.Collections.Synth.bytes d.Collections.Synth.terms)
      (Collections.Synth.documents p.Experiment.model);
    let dict = Inquery.Indexer.dictionary indexer in
    let build_vfs = Vfs.create ~cost_model () in
    let file = name ^ ".mneme" in
    ignore (Mneme_backend.build build_vfs ~file ~dict (Inquery.Indexer.to_records indexer));
    let buffers =
      match buffers with
      | Some b -> b
      | None ->
        let largest =
          Seq.fold_left
            (fun acc (_, r) -> max acc (Bytes.length r))
            1
            (Inquery.Indexer.to_records indexer)
        in
        Buffer_sizing.compute ~largest_record:largest ()
    in
    let replicas =
      List.init shard_replicas (fun r ->
          let vfs = Vfs.create ~cost_model () in
          Vfs.copy_file build_vfs file ~into:vfs;
          Vfs.purge_os_cache vfs;
          let store = Mneme_backend.open_session vfs ~file ~buffers in
          { Frontend.name = Printf.sprintf "%s/r%d" name r; vfs; store })
    in
    let frontend =
      Frontend.create ~replicas ~dict ~df_of ~n_docs ~avg_doc_len ~doc_len ?hedge_after_ms
        ?window ?trip_after ?cooldown_ms ()
    in
    { sh_name = name; sh_lo = lo; sh_hi = hi; sh_frontend = frontend }
  in
  {
    shards = Array.init shards make_shard;
    policy;
    retries;
    backoff = backoff_ms;
    global_bound;
    docs_total = n_docs;
  }

let shard_count t = Array.length t.shards
let doc_count t = t.docs_total
let shard_names t = Array.to_list t.shards |> List.map (fun s -> s.sh_name)

let find t name =
  match Array.to_list t.shards |> List.find_opt (fun s -> String.equal s.sh_name name) with
  | Some s -> s
  | None -> raise Not_found

let shard_range t ~shard = let s = find t shard in (s.sh_lo, s.sh_hi)
let shard_frontend t ~shard = (find t shard).sh_frontend
let replica_names t ~shard = Frontend.replica_names (find t shard).sh_frontend

type coverage = {
  shards_total : int;
  answered : int;
  degraded : int;
  shed : int;
  docs_covered : int;
  docs_total : int;
}

let coverage_fraction c =
  if c.docs_total = 0 then 1.0 else float_of_int c.docs_covered /. float_of_int c.docs_total

let full_coverage c = c.answered = c.shards_total

type shard_status = Answered | Degraded of string | Shed of string

type shard_report = {
  r_shard : string;
  r_range : int * int;
  r_attempts : int;
  r_status : shard_status;
  r_elapsed_ms : float;
  r_postings_decoded : int;
  r_hedged_fetches : int;
  r_deadline_hit : bool;
}

type result = {
  ranked : Inquery.Ranking.ranked list;
  coverage : coverage;
  complete : bool;
  reports : shard_report list;
  elapsed_ms : float;
}

type error =
  | Shard_failed of { shard : string; attempts : int; reason : string }
  | Coverage_below_min of { coverage : coverage; fraction : float; min_coverage : float }

let error_message = function
  | Shard_failed { shard; attempts; reason } ->
    Printf.sprintf "shard %s failed after %d attempt(s): %s" shard attempts reason
  | Coverage_below_min { fraction; min_coverage; coverage } ->
    Printf.sprintf "coverage %.3f below required %.3f (%d/%d shards answered)" fraction
      min_coverage coverage.answered coverage.shards_total

(* The ranking order every consumer uses: score descending, ties toward
   the smaller doc id. *)
let rank_order (a : Inquery.Ranking.ranked) (b : Inquery.Ranking.ranked) =
  if a.Inquery.Ranking.score = b.Inquery.Ranking.score then
    compare a.Inquery.Ranking.doc b.Inquery.Ranking.doc
  else compare b.Inquery.Ranking.score a.Inquery.Ranking.score

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

exception Bail of error

(* One shard's scatter leg: attempt, classify, retry-with-backoff.
   Deadline-expired attempts are not retried — the budget that would pay
   for the retry is already spent; device-level failures (crashed or
   corrupt on every route) are, after [backoff] of logical time lets the
   shard's breaker cooldowns elapse, as long as attempts and deadline
   budget remain. *)
let scatter_one t ~top_k ~deadline_ms ~floor sh query =
  let fe = sh.sh_frontend in
  let used = ref 0.0 in
  let attempts = ref 0 in
  let decoded = ref 0 in
  let hedged = ref 0 in
  let max_attempts = 1 + t.retries in
  let rec go () =
    incr attempts;
    let remaining =
      match deadline_ms with None -> None | Some d -> Some (d -. !used)
    in
    let r = Frontend.run_query ~top_k ?deadline_ms:remaining ?floor fe query in
    used := !used +. r.Frontend.elapsed_ms;
    decoded := !decoded + r.Frontend.postings_decoded;
    hedged := !hedged + r.Frontend.hedged_fetches;
    if not r.Frontend.degraded then (Answered, Some r, false)
    else if r.Frontend.deadline_hit then (Degraded "deadline expired", Some r, true)
    else begin
      let reason =
        match r.Frontend.failed_terms with
        | (term, why) :: _ -> Printf.sprintf "term %s: %s" term why
        | [] -> "no routable replica"
      in
      let budget_left =
        match deadline_ms with None -> true | Some d -> d -. (!used +. t.backoff) > 0.0
      in
      if !attempts < max_attempts && budget_left then begin
        Frontend.tick fe t.backoff;
        used := !used +. t.backoff;
        go ()
      end
      else (Shed reason, Some r, false)
    end
  in
  let status, result, deadline_hit = go () in
  ( {
      r_shard = sh.sh_name;
      r_range = (sh.sh_lo, sh.sh_hi);
      r_attempts = !attempts;
      r_status = status;
      r_elapsed_ms = !used;
      r_postings_decoded = !decoded;
      r_hedged_fetches = !hedged;
      r_deadline_hit = deadline_hit;
    },
    result )

let run_query ?(top_k = 100) ?deadline_ms t query =
  (match deadline_ms with
  | Some d when d <= 0.0 -> invalid_arg "Shard.run_query: deadline must be positive"
  | _ -> ());
  let merged = ref [] in
  let reports = ref [] in
  let elapsed = ref 0.0 in
  let answered = ref 0 and degraded = ref 0 and shed = ref 0 and covered = ref 0 in
  let floor () =
    if not t.global_bound then None
    else begin
      (* The global bound: the kth best score merged so far.  Only
         answered shards feed it — a degraded shard's scores are
         underestimates (missing evidence) and would over-prune. *)
      let rec kth i = function
        | [] -> None
        | [ (x : Inquery.Ranking.ranked) ] when i = top_k - 1 -> Some x.Inquery.Ranking.score
        | x :: _ when i = top_k - 1 -> Some x.Inquery.Ranking.score
        | _ :: tl -> kth (i + 1) tl
      in
      if top_k = 0 then None else kth 0 !merged
    end
  in
  (try
     Array.iter
       (fun sh ->
         let report, result = scatter_one t ~top_k ~deadline_ms ~floor:(floor ()) sh query in
         reports := report :: !reports;
         if report.r_elapsed_ms > !elapsed then elapsed := report.r_elapsed_ms;
         (match (report.r_status, result) with
         | Answered, Some r ->
           incr answered;
           covered := !covered + (sh.sh_hi - sh.sh_lo);
           merged := take top_k (List.merge rank_order !merged (r.Frontend.ranked))
         | Answered, None -> assert false
         | Degraded reason, _ ->
           incr degraded;
           if t.policy = Fail_fast then
             raise
               (Bail
                  (Shard_failed
                     { shard = sh.sh_name; attempts = report.r_attempts; reason }))
         | Shed reason, _ ->
           incr shed;
           if t.policy = Fail_fast then
             raise
               (Bail
                  (Shard_failed
                     { shard = sh.sh_name; attempts = report.r_attempts; reason }))))
       t.shards;
     let coverage =
       {
         shards_total = Array.length t.shards;
         answered = !answered;
         degraded = !degraded;
         shed = !shed;
         docs_covered = !covered;
         docs_total = t.docs_total;
       }
     in
     let fraction = coverage_fraction coverage in
     (match t.policy with
     | Best_effort min_coverage when fraction < min_coverage ->
       Error (Coverage_below_min { coverage; fraction; min_coverage })
     | Best_effort _ | Fail_fast ->
       Ok
         {
           ranked = !merged;
           coverage;
           complete = full_coverage coverage;
           reports = List.rev !reports;
           elapsed_ms = !elapsed;
         })
   with Bail e -> Error e)

let run_query_string ?top_k ?deadline_ms t text =
  run_query ?top_k ?deadline_ms t (Inquery.Query.parse_exn text)
