(** Dynamic inverted-file maintenance — the extension the paper leaves
    as future work.

    "In the INQUERY system ... document collections are currently viewed
    as archival and modification is considered a rare event.  Therefore,
    addition or deletion of a single document ... is not directly
    supported and requires the entire document collection to be
    re-indexed."

    A live index supports exactly that: incremental document addition
    and deletion over either storage backend, plus search, with the
    collection statistics (document count, lengths, per-term df/cf) kept
    consistent.  The costs the paper worries about become observable:

    - {b addition} obtains the inverted list of every term in the new
      document and re-stores it with the entry merged in.  Under the
      B-tree the old extent is freed and may be recycled; under Mneme
      the index is {e copy-on-write} — see below.  Objects that outgrow
      their size class migrate pools (small → medium → large), updating
      the dictionary locator.
    - {b deletion} must visit {e every} inverted list, since there is no
      forward index — the paper's "holes in the inverted lists", here
      actually punched and measured.

    {b Snapshot isolation (Mneme backend).}  Writers never overwrite or
    free a live object.  Every mutation allocates new objects for the
    records it touches, then publishes a new {e epoch}: a sealed root
    object ({!Mneme.Epoch.seal}) holding the complete object directory
    — term locators, df/cf, document lengths — is written and the store
    header switched to it.  With a journal enabled ([?journal]), the
    COW writes, the sealed root and the header switch ride {e one}
    transaction whose CRC-sealed commit record is the single commit
    point: a crash recovers to wholly the old epoch or wholly the new
    one, never a torn mix ({!Core.Torture.run_epoch} enumerates every
    crash point and proves it).  Readers {!pin} an epoch and
    {!search_pinned} against it with bit-identical rankings no matter
    how much mutation follows; {!gc} reclaims stale objects only when
    no pin can reach them. *)

type t

val wrap_btree :
  ?stopwords:Inquery.Stopwords.t ->
  ?stem:bool ->
  Vfs.t ->
  tree:Btree.t ->
  dict:Inquery.Dictionary.t ->
  doc_lengths:(int * int) list ->
  t
(** Adopt an existing B-tree index.  [doc_lengths] carries the indexed
    length of each existing document. *)

val wrap_mneme :
  ?stopwords:Inquery.Stopwords.t ->
  ?stem:bool ->
  ?thresholds:Partition.thresholds ->
  Vfs.t ->
  store:Mneme.Store.t ->
  dict:Inquery.Dictionary.t ->
  doc_lengths:(int * int) list ->
  t
(** Adopt a built Mneme store.  Pools "small", "medium" and "large"
    must exist and have buffers attached.  Raises [Not_found] if a pool
    is missing.  Every object already in the store is treated as live
    in the current epoch; sizes of pre-existing objects are not
    censused, so GC byte accounting covers only objects written through
    this live index. *)

val create_btree :
  ?stopwords:Inquery.Stopwords.t -> ?stem:bool -> Vfs.t -> file:string -> unit -> t
(** An empty live index on a fresh B-tree file. *)

val create_mneme :
  ?stopwords:Inquery.Stopwords.t ->
  ?stem:bool ->
  ?buffers:Buffer_sizing.t ->
  ?journal:string ->
  Vfs.t ->
  file:string ->
  unit ->
  t
(** An empty live index on a fresh Mneme store with the three standard
    pools ([buffers] defaults to 64 KB per pool).  With [?journal] the
    store's writes go through a redo journal in that log file and every
    mutation commits — objects, sealed root, header — as one atomic
    epoch publication; reopen after a crash with {!open_mneme}. *)

val open_mneme :
  ?stopwords:Inquery.Stopwords.t ->
  ?stem:bool ->
  ?buffers:Buffer_sizing.t ->
  ?thresholds:Partition.thresholds ->
  ?journal:string ->
  Vfs.t ->
  file:string ->
  unit ->
  t
(** Re-open a live index from its published root: run journal recovery
    (when [?journal] is given), read the store's root envelope, and
    rebuild the dictionary, document lengths and epoch manager from the
    sealed directory.  Objects the root does not name — orphans of
    epochs that never committed or were superseded — are censused as
    stale and reclaimed by the next {!gc}.  Raises
    [Mneme.Store.Corrupt] if no root was ever published, or if the root
    envelope is torn or disagrees with the header. *)

val backend_name : t -> string
(** "btree" or "mneme". *)

val add_document : t -> ?doc_id:int -> string -> int
(** Index one document and return its id (fresh ids are assigned past
    the largest seen).  Under Mneme this publishes a new epoch.  Raises
    [Invalid_argument] if an explicit id is not beyond every existing
    id. *)

val delete_document : t -> int -> bool
(** Remove a document from every inverted list it appears in; returns
    whether it existed.  Under Mneme an existing document's deletion
    publishes a new epoch (a no-op deletion does not). *)

val tokenize : t -> string -> (string * int list) list * int
(** Run one document's text through the index's lexer, stopword and
    stemming configuration without touching the index: per-term
    ascending position lists in first-occurrence order, plus the
    indexed length — exactly the contribution {!add_document} would
    apply.  {!Ingest} buffers this. *)

val fold_batch :
  t ->
  ?meta:(string * string) list ->
  docs:(int * int) list ->
  postings:(string * (int * int list) list) list ->
  deletes:int list ->
  unit ->
  unit
(** Apply a whole batch — new documents with pre-tokenized postings,
    then deletions — as {e one} mutation, so under a journaled Mneme
    backend the entire batch commits as a single epoch publication
    (the ingestion merge's crash-atomic commit point).  [docs] carries
    [(doc, indexed_length)] for every new document; [postings] carries
    per (already-normalised) term the new [(doc, positions)] pairs,
    ascending, all beyond every doc already in the record; [deletes]
    names documents to remove (absent ones are skipped) — removed in
    one dictionary sweep, not one per document.  [meta] upserts opaque
    key/value pairs carried verbatim in every sealed root from this
    epoch on (e.g. the ingestion WAL frontier).  Raises
    [Invalid_argument] if a [docs] id is already present. *)

val meta : t -> (string * string) list
(** The metadata pairs riding the latest view, sorted by key ([] until
    a {!fold_batch} sets some). *)

val lookup : t -> string -> (bytes * int * int) option
(** [(record, df, cf)] for an {e already-normalised} term in the latest
    view — no stopword/stemming pass, unlike {!term_record} (stemming
    is not idempotent). *)

val normalise_term : t -> string -> string option
(** The index's stopword/stemming pipeline for one raw term: [None] if
    stopped. *)

val doc_lengths : t -> (int * int) list
(** [(doc, indexed_length)] for every live document, sorted. *)

val next_doc : t -> int
(** The next document id a fresh {!add_document} would take. *)

val total_length : t -> int
(** Sum of live documents' indexed lengths. *)

val stopwords : t -> Inquery.Stopwords.t option
val stem : t -> bool

val document_count : t -> int
val contains_document : t -> int -> bool
val avg_doc_length : t -> float

val term_record : t -> string -> bytes option
(** The current inverted record for a (normalised) term. *)

val search : ?top_k:int -> t -> string -> Inquery.Ranking.ranked list
(** Parse and evaluate a query against the live (latest) state.
    Raises [Invalid_argument] on syntax errors. *)

(** {2 Snapshot isolation (Mneme backend)}

    All of the following raise [Invalid_argument] on a B-tree backend,
    except {!epoch} which returns 0. *)

type pin
(** A reader's claim on one published epoch: the epoch's object
    directory, captured immutably.  Release exactly once. *)

val epoch : t -> int
(** The latest published epoch (0 before any mutation). *)

val on_publish : t -> (epoch:int -> unit) -> unit
(** Register a hook to run after every epoch publication, with the new
    epoch, once the new root is installed and the handle serves it —
    the invalidation point for anything caching under epoch tags
    ({!Result_cache}, {!Util.Block_cache}): a hook typically calls
    [retain ~keep:(fun e -> e = epoch || pinned e)].  Hooks run in
    registration order; {!Ingest} batches publish through the same path
    and fire them too.  Mneme backend only — B-tree mutations publish
    no epochs, so hooks never fire there. *)

val pin : t -> pin
(** Pin the latest published epoch for reading. *)

val pin_epoch : pin -> int

val release : t -> pin -> unit
(** Drop the claim; objects only this pin kept alive become
    reclaimable.  Raises [Invalid_argument] on double release. *)

val search_pinned : ?top_k:int -> t -> pin -> string -> Inquery.Ranking.ranked list
(** Evaluate a query against the pinned epoch: every record fetch and
    every collection statistic comes from the pinned snapshot, so the
    ranking is bit-identical to what {!search} returned when that epoch
    was current — no matter how many mutations have been published
    since.  Query-tree segment reservation is applied for the duration
    of the evaluation and released on exit. *)

val pinned_epochs : t -> int list
(** Currently pinned epochs, ascending, with multiplicity ([] on
    B-tree). *)

val pin_lookup : t -> pin -> string -> (bytes * int * int) option
(** [(record, df, cf)] for an already-normalised term as the pinned
    epoch saw it, fetched through the pinned locator (which the pin
    keeps alive). *)

val pin_doc_lengths : pin -> (int * int) list
(** The pinned epoch's [(doc, indexed_length)] table, sorted. *)

val pin_total_length : pin -> int
val pin_next_doc : pin -> int

val pin_meta : pin -> (string * string) list
(** The metadata pairs sealed into the pinned root, sorted by key. *)

val pin_directory : pin -> (string * int * int) list
(** [(term, df, cf)] as the pinned epoch's root recorded them, sorted
    by term. *)

val gc : t -> Mneme.Epoch.gc_stats
(** Reclaim every stale object — retired by a later epoch, or orphaned
    by a crash — that no pinned epoch can reach ({!Mneme.Store.delete},
    folding the bytes into {!Mneme.Store.wasted_bytes} for {!compact}
    to drop).  Journaled: the deletes commit as one transaction. *)

val stranded_bytes : t -> int
(** Bytes held by stale-but-unreclaimed objects (0 on B-tree).  Returns
    to zero after a {!gc} with no pins outstanding. *)

val mneme_store : t -> Mneme.Store.t option
(** The underlying store, for integrity checking ({!Mneme.Check}). *)

val directory : t -> (string * int * int) list
(** [(term, df, cf)] for every term with a live record, sorted by term
    — on Mneme, read from the latest {e published} snapshot. *)

val audit : t -> (string * string) list
(** Statistics-drift audit, [(where, problem)] pairs, empty when clean:
    deep-validates every record and cross-checks df/cf against the
    dictionary ({!Catalog.verify_records}), checks the aggregate
    length/count invariants, and — on Mneme — verifies the published
    snapshot agrees exactly with the live dictionary and document
    table. *)

val flush : t -> unit
(** Persist backend metadata (B-tree header / Mneme finalize; journaled
    Mneme commits the finalize as a transaction). *)

val compact : t -> file:string -> unit
(** Mneme backend only: run {!gc}, then rewrite the store into [file],
    reclaiming every byte stranded by retirements and deletions, and
    switch the live index to the compacted store (object ids — and
    therefore the dictionary locators and pinned snapshots — are
    preserved; objects kept alive by pins are carried over).  Raises
    [Invalid_argument] on a B-tree backend or a journaled store. *)

type space = { file_bytes : int; reclaimable_bytes : int }

val space : t -> space
(** File size and the backend's recyclable byte count — for Mneme, the
    store's stranded extents {e plus} stale-but-uncollected epoch
    objects ({!stranded_bytes}) — the update micro-study's metric. *)
