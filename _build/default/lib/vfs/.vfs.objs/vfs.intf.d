lib/vfs/vfs.mli: Clock Cost_model
