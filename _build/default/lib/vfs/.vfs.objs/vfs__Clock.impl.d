lib/vfs/clock.ml:
