lib/vfs/cost_model.mli:
