lib/vfs/cost_model.ml:
