lib/vfs/clock.mli:
