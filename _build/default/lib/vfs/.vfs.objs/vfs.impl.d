lib/vfs/vfs.ml: Bytes Clock Cost_model Hashtbl List Printf Util
