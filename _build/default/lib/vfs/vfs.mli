(** Simulated file system: in-memory files behind a block device, an
    ULTRIX-style OS page cache, a simulated clock, and the exact I/O
    accounting the paper reports in Table 5.

    Every storage substrate in this reproduction (the B-tree package and
    the Mneme object store) performs its I/O through this module, so the
    three statistics of Table 5 fall out of the counters:

    - [disk_inputs] — "I", blocks actually read from the device
      ([getrusage] inputs in the paper);
    - [file_accesses] — numerator of "A", read system calls issued;
    - [bytes_read] — "B", bytes copied from kernel to user space.

    Reads and writes charge the {!Clock} according to the {!Cost_model}:
    a syscall fee per access, a disk fee per block that misses the OS
    cache, and a copy fee per byte transferred. *)

module Clock : module type of Clock
(** Re-exported: the simulated clock (this module is the library root,
    so companions are reached through it). *)

module Cost_model : module type of Cost_model
(** Re-exported: the hardware cost model. *)

type t
type file

val create : ?cost_model:Cost_model.t -> unit -> t
val cost_model : t -> Cost_model.t
val clock : t -> Clock.t

type counters = {
  disk_inputs : int;
  disk_outputs : int;
  file_accesses : int;
  bytes_read : int;
  bytes_written : int;
  os_cache_hits : int;
  os_cache_misses : int;
}

val counters : t -> counters
val reset_counters : t -> unit

val diff_counters : later:counters -> earlier:counters -> counters
(** Component-wise subtraction for per-run intervals. *)

val purge_os_cache : t -> unit
(** Drop every cached block — the paper's 32 MB "chill file" read, which
    guaranteed no inverted-file data survived in the ULTRIX file cache
    between runs. *)

val open_file : t -> string -> file
(** [open_file t name] opens [name], creating an empty file if absent.
    Opening the same name twice returns the same file. *)

val file_exists : t -> string -> bool

val delete_file : t -> string -> unit
(** Remove the file and its cached blocks.  No-op if absent. *)

val file_names : t -> string list
(** All file names, sorted. *)

val file_name : file -> string
val size : file -> int

val read : file -> off:int -> len:int -> bytes
(** [read f ~off ~len] returns [len] bytes starting at [off].
    Raises [Invalid_argument] if the range extends past end of file or
    is negative. *)

val write : file -> off:int -> bytes -> unit
(** [write f ~off b] writes all of [b] at [off], extending the file as
    needed (a hole left between the old end and [off] reads as zeros). *)

val append : file -> bytes -> int
(** [append f b] writes [b] at end of file and returns the offset the
    data landed at. *)

val truncate : file -> int -> unit
(** [truncate f n] sets the size to [n] (only shrinking is meaningful;
    growing pads with zeros).  Raises [Invalid_argument] if [n < 0]. *)
