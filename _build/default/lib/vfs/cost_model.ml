type t = {
  block_size : int;
  disk_read_ms : float;
  disk_seq_read_ms : float;
  disk_write_ms : float;
  syscall_ms : float;
  copy_ms_per_kb : float;
  cpu_ns_per_posting : float;
  cpu_us_per_query_node : float;
  os_cache_blocks : int;
}

let default =
  {
    block_size = 8192;
    disk_read_ms = 9.0;
    disk_seq_read_ms = 9.0;
    disk_write_ms = 10.0;
    syscall_ms = 0.8;
    copy_ms_per_kb = 0.05;
    cpu_ns_per_posting = 7000.0;
    cpu_us_per_query_node = 20.0;
    os_cache_blocks = 512;
  }

let create ?(block_size = default.block_size) ?(disk_read_ms = default.disk_read_ms)
    ?disk_seq_read_ms
    ?(disk_write_ms = default.disk_write_ms) ?(syscall_ms = default.syscall_ms)
    ?(copy_ms_per_kb = default.copy_ms_per_kb)
    ?(cpu_ns_per_posting = default.cpu_ns_per_posting)
    ?(cpu_us_per_query_node = default.cpu_us_per_query_node)
    ?(os_cache_blocks = default.os_cache_blocks) () =
  if block_size <= 0 then invalid_arg "Cost_model.create: block_size must be positive";
  if os_cache_blocks <= 0 then
    invalid_arg "Cost_model.create: os_cache_blocks must be positive";
  let disk_seq_read_ms =
    match disk_seq_read_ms with Some v -> v | None -> disk_read_ms
  in
  {
    block_size;
    disk_read_ms;
    disk_seq_read_ms;
    disk_write_ms;
    syscall_ms;
    copy_ms_per_kb;
    cpu_ns_per_posting;
    cpu_us_per_query_node;
    os_cache_blocks;
  }
