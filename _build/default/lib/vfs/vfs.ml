module Clock = Clock
module Cost_model = Cost_model

type counters = {
  disk_inputs : int;
  disk_outputs : int;
  file_accesses : int;
  bytes_read : int;
  bytes_written : int;
  os_cache_hits : int;
  os_cache_misses : int;
}

type file = {
  owner : t;
  fid : int;
  name : string;
  mutable data : Bytes.t;
  mutable size : int;
}

and t = {
  model : Cost_model.t;
  clk : Clock.t;
  os_cache : (int * int, unit) Util.Lru.t; (* (file id, block number) *)
  files : (string, file) Hashtbl.t;
  mutable next_fid : int;
  mutable last_disk_block : (int * int) option; (* disk head position *)
  mutable c_disk_inputs : int;
  mutable c_disk_outputs : int;
  mutable c_file_accesses : int;
  mutable c_bytes_read : int;
  mutable c_bytes_written : int;
  mutable c_hits : int;
  mutable c_misses : int;
}

let create ?(cost_model = Cost_model.default) () =
  {
    model = cost_model;
    clk = Clock.create ();
    os_cache = Util.Lru.create ~capacity:cost_model.Cost_model.os_cache_blocks;
    files = Hashtbl.create 16;
    next_fid = 0;
    last_disk_block = None;
    c_disk_inputs = 0;
    c_disk_outputs = 0;
    c_file_accesses = 0;
    c_bytes_read = 0;
    c_bytes_written = 0;
    c_hits = 0;
    c_misses = 0;
  }

let cost_model t = t.model
let clock t = t.clk

let counters t =
  {
    disk_inputs = t.c_disk_inputs;
    disk_outputs = t.c_disk_outputs;
    file_accesses = t.c_file_accesses;
    bytes_read = t.c_bytes_read;
    bytes_written = t.c_bytes_written;
    os_cache_hits = t.c_hits;
    os_cache_misses = t.c_misses;
  }

let reset_counters t =
  t.c_disk_inputs <- 0;
  t.c_disk_outputs <- 0;
  t.c_file_accesses <- 0;
  t.c_bytes_read <- 0;
  t.c_bytes_written <- 0;
  t.c_hits <- 0;
  t.c_misses <- 0

let diff_counters ~later ~earlier =
  {
    disk_inputs = later.disk_inputs - earlier.disk_inputs;
    disk_outputs = later.disk_outputs - earlier.disk_outputs;
    file_accesses = later.file_accesses - earlier.file_accesses;
    bytes_read = later.bytes_read - earlier.bytes_read;
    bytes_written = later.bytes_written - earlier.bytes_written;
    os_cache_hits = later.os_cache_hits - earlier.os_cache_hits;
    os_cache_misses = later.os_cache_misses - earlier.os_cache_misses;
  }

let purge_os_cache t = Util.Lru.clear t.os_cache

let open_file t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None ->
    let f = { owner = t; fid = t.next_fid; name; data = Bytes.create 0; size = 0 } in
    t.next_fid <- t.next_fid + 1;
    Hashtbl.add t.files name f;
    f

let file_exists t name = Hashtbl.mem t.files name

let delete_file t name =
  match Hashtbl.find_opt t.files name with
  | None -> ()
  | Some f ->
    Hashtbl.remove t.files name;
    (* Drop this file's blocks from the OS cache (collect first: we must
       not remove while iterating). *)
    let stale = ref [] in
    Util.Lru.iter t.os_cache (fun (fid, blk) () ->
        if fid = f.fid then stale := (fid, blk) :: !stale);
    List.iter (Util.Lru.remove t.os_cache) !stale

let file_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.files [] |> List.sort compare

let file_name f = f.name
let size f = f.size

let charge_copy_and_syscall t len =
  Clock.charge_syscall t.clk t.model.Cost_model.syscall_ms;
  Clock.charge_copy t.clk (float_of_int len /. 1024.0 *. t.model.Cost_model.copy_ms_per_kb)

(* Fault in every block touched by [off, off+len), counting hits and misses. *)
let touch_blocks_read f ~off ~len =
  let t = f.owner in
  let bs = t.model.Cost_model.block_size in
  if len > 0 then
    for blk = off / bs to (off + len - 1) / bs do
      match Util.Lru.find t.os_cache (f.fid, blk) with
      | Some () -> t.c_hits <- t.c_hits + 1
      | None ->
        t.c_misses <- t.c_misses + 1;
        t.c_disk_inputs <- t.c_disk_inputs + 1;
        let sequential =
          match t.last_disk_block with
          | Some (fid, last) -> fid = f.fid && blk = last + 1
          | None -> false
        in
        Clock.charge_disk t.clk
          (if sequential then t.model.Cost_model.disk_seq_read_ms
           else t.model.Cost_model.disk_read_ms);
        t.last_disk_block <- Some (f.fid, blk);
        ignore (Util.Lru.add t.os_cache (f.fid, blk) ())
    done

let touch_blocks_write f ~off ~len =
  let t = f.owner in
  let bs = t.model.Cost_model.block_size in
  if len > 0 then
    for blk = off / bs to (off + len - 1) / bs do
      (* Write-through: the block lands on disk and stays in the cache. *)
      t.c_disk_outputs <- t.c_disk_outputs + 1;
      Clock.charge_disk t.clk t.model.Cost_model.disk_write_ms;
      t.last_disk_block <- Some (f.fid, blk);
      ignore (Util.Lru.add t.os_cache (f.fid, blk) ())
    done

let read f ~off ~len =
  if off < 0 || len < 0 || off + len > f.size then
    invalid_arg
      (Printf.sprintf "Vfs.read %s: range [%d, %d) outside file of size %d" f.name off
         (off + len) f.size);
  let t = f.owner in
  t.c_file_accesses <- t.c_file_accesses + 1;
  t.c_bytes_read <- t.c_bytes_read + len;
  charge_copy_and_syscall t len;
  touch_blocks_read f ~off ~len;
  Bytes.sub f.data off len

let ensure_capacity f n =
  let cap = Bytes.length f.data in
  if n > cap then begin
    let cap' = max n (max 4096 (cap * 2)) in
    let data' = Bytes.make cap' '\000' in
    Bytes.blit f.data 0 data' 0 f.size;
    f.data <- data'
  end

let write f ~off b =
  if off < 0 then invalid_arg "Vfs.write: negative offset";
  let len = Bytes.length b in
  let t = f.owner in
  ensure_capacity f (off + len);
  Bytes.blit b 0 f.data off len;
  if off + len > f.size then f.size <- off + len;
  t.c_file_accesses <- t.c_file_accesses + 1;
  t.c_bytes_written <- t.c_bytes_written + len;
  charge_copy_and_syscall t len;
  touch_blocks_write f ~off ~len

let append f b =
  let off = f.size in
  write f ~off b;
  off

let truncate f n =
  if n < 0 then invalid_arg "Vfs.truncate: negative size";
  if n > f.size then begin
    ensure_capacity f n;
    Bytes.fill f.data f.size (n - f.size) '\000'
  end;
  f.size <- n
