(** Hardware cost model for the simulated 1993 platform.

    The paper ran on a DECstation 5000/240 (40 MHz MIPS R3000) under
    ULTRIX with RZ25/RZ58 SCSI disks.  Tables 3 and 4 are, to first
    order, linear functions of the event counts in Table 5; the
    coefficients here were fitted from the paper's own rows: the
    TIPSTER B-tree row gives 861.75 s / 96 352 disk inputs ~ 9 ms per
    8 KB block input; the CACM rows (where almost all data is cached)
    pin the per-access syscall and per-KB copy costs; and the gap
    between Tables 3 and 4 implies tens of microseconds of inference
    CPU per posting on the 40 MHz R3000.  All simulated times flow
    through these constants so sensitivity studies can vary them in one
    place. *)

type t = {
  block_size : int;  (** disk transfer unit in bytes; the paper's 8 KB *)
  disk_read_ms : float;  (** per block read from the (simulated) disk
                             after a head movement (seek + transfer) *)
  disk_seq_read_ms : float;
      (** per block read sequentially after the previous one (transfer
          only).  Defaults to [disk_read_ms] — i.e. no seek modelling —
          which is the calibration the paper tables use; the seek-model
          ablation sets it lower. *)
  disk_write_ms : float;  (** per block written to the disk *)
  syscall_ms : float;  (** per file access (read/write system call) *)
  copy_ms_per_kb : float;  (** kernel->user copy per KB transferred *)
  cpu_ns_per_posting : float;  (** engine CPU per posting scored *)
  cpu_us_per_query_node : float;  (** engine CPU per query-tree node visit *)
  os_cache_blocks : int;  (** capacity of the simulated ULTRIX file cache *)
}

val default : t
(** The DESIGN.md constants. *)

val create :
  ?block_size:int ->
  ?disk_read_ms:float ->
  ?disk_seq_read_ms:float ->
  ?disk_write_ms:float ->
  ?syscall_ms:float ->
  ?copy_ms_per_kb:float ->
  ?cpu_ns_per_posting:float ->
  ?cpu_us_per_query_node:float ->
  ?os_cache_blocks:int ->
  unit ->
  t
(** [create ()] is [default]; each argument overrides one field.
    Raises [Invalid_argument] if [block_size <= 0] or
    [os_cache_blocks <= 0]. *)
