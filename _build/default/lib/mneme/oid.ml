type t = int

let slots_per_lseg = 255
let bits = 28
let max_id = (1 lsl bits) - 1

let lseg id = id / slots_per_lseg
let slot id = id mod slots_per_lseg

let make ~lseg ~slot =
  if slot < 0 || slot >= slots_per_lseg then invalid_arg "Oid.make: slot out of range";
  if lseg < 0 then invalid_arg "Oid.make: negative lseg";
  let id = (lseg * slots_per_lseg) + slot in
  if id > max_id then invalid_arg "Oid.make: id exceeds 28-bit space";
  id

module Global = struct
  type gid = int

  let make ~file_handle local =
    if file_handle < 0 then invalid_arg "Oid.Global.make: negative file handle";
    if local < 0 || local > max_id then invalid_arg "Oid.Global.make: local id out of range";
    (file_handle lsl bits) lor local

  let file_handle gid = gid lsr bits
  let local gid = gid land max_id
end
