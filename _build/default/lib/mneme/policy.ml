type layout = Fixed_slots of { slot_size : int } | Packed

type t = {
  name : string;
  pseg_size : int;
  singleton : bool;
  layout : layout;
  align : int;
}

let validate t =
  if t.pseg_size <= 0 then invalid_arg "Policy: pseg_size must be positive";
  if t.align <= 0 then invalid_arg "Policy: align must be positive";
  (match t.layout with
  | Packed -> ()
  | Fixed_slots { slot_size } ->
    if slot_size < 5 then invalid_arg "Policy: slot_size must be at least 5";
    (* header: lseg u32 + count u16 *)
    if 6 + (Oid.slots_per_lseg * slot_size) > t.pseg_size then
      invalid_arg "Policy: 255 fixed slots must fit one physical segment";
    if t.singleton then invalid_arg "Policy: fixed-slot pools cannot be singleton");
  t

let small =
  validate
    { name = "small"; pseg_size = 4096; singleton = false;
      layout = Fixed_slots { slot_size = 16 }; align = 4096 }

let medium =
  validate { name = "medium"; pseg_size = 8192; singleton = false; layout = Packed; align = 8192 }

let large =
  validate { name = "large"; pseg_size = 8192; singleton = true; layout = Packed; align = 8192 }

let make ~name ?(pseg_size = 8192) ?(singleton = false) ?(layout = Packed) ?(align = 8192) () =
  validate { name; pseg_size; singleton; layout; align }

let max_payload t =
  match t.layout with
  | Fixed_slots { slot_size } -> Some (slot_size - 4)
  | Packed -> None

let encode buf t =
  Util.Bin.buf_string buf t.name;
  Util.Bin.buf_u32 buf t.pseg_size;
  Util.Bin.buf_u8 buf (if t.singleton then 1 else 0);
  (match t.layout with
  | Packed -> Util.Bin.buf_u8 buf 0
  | Fixed_slots { slot_size } ->
    Util.Bin.buf_u8 buf 1;
    Util.Bin.buf_u32 buf slot_size);
  Util.Bin.buf_u32 buf t.align

let decode b pos =
  let name, pos = Util.Bin.get_string b pos in
  let pseg_size = Util.Bin.get_u32 b pos in
  let singleton = Util.Bin.get_u8 b (pos + 4) = 1 in
  let tag = Util.Bin.get_u8 b (pos + 5) in
  let layout, pos =
    if tag = 0 then (Packed, pos + 6)
    else (Fixed_slots { slot_size = Util.Bin.get_u32 b (pos + 6) }, pos + 10)
  in
  let align = Util.Bin.get_u32 b pos in
  (validate { name; pseg_size; singleton; layout; align }, pos + 4)
