(** Pool policies.

    A pool defines the management policy for the objects it contains:
    how large physical segments are, how objects are laid out inside a
    segment, and how objects are created and located.  Pools are the
    primary extensibility mechanism in Mneme; the three policies the
    paper builds for inverted lists are provided as constructors. *)

type layout =
  | Fixed_slots of { slot_size : int }
      (** Every object occupies a fixed slot of [slot_size] bytes, of
          which 4 hold the length; a whole logical segment (255 objects)
          fits in one physical segment.  The paper's small-object pool
          uses 16-byte slots in 4 KB segments. *)
  | Packed
      (** Objects are packed back to back behind a directory of
          (id, offset, length) entries.  Used by the medium pool (8 KB
          segments) and, with one object per segment, the large pool. *)

type t = {
  name : string;
  pseg_size : int;
      (** Target physical segment size in bytes.  Ignored for singleton
          pools, where each object sizes its own segment. *)
  singleton : bool;
      (** One object per physical segment (the large-object pool). *)
  layout : layout;
  align : int;  (** File alignment of segment starts, for transfer-block
                    sympathy (the paper aligns to the 4/8 KB disk units). *)
}

val small : t
(** 16-byte fixed slots, 4 KB segments: holds every inverted list of
    12 bytes or less (roughly half of all lists, per the paper). *)

val medium : t
(** Packed 8 KB segments, "based on the disk I/O block size and a desire
    to keep the segments relatively small". *)

val large : t
(** One object per segment, for lists over 4 KB. *)

val make :
  name:string -> ?pseg_size:int -> ?singleton:bool -> ?layout:layout -> ?align:int -> unit -> t
(** Custom policy (defaults mirror {!medium}).  Raises
    [Invalid_argument] if [pseg_size <= 0], [align <= 0], or a
    [Fixed_slots] slot size is not at least 5 bytes (4-byte length field
    plus some payload) or does not fit 255 slots in one segment. *)

val max_payload : t -> int option
(** For [Fixed_slots] layouts, the largest object the pool accepts;
    [None] for packed layouts (unbounded). *)

val encode : Buffer.t -> t -> unit
val decode : bytes -> int -> t * int
(** Aux-table (de)serialisation. *)
