let header_bytes = 8

let encode_chunk ~next payload ~pos ~len =
  let b = Bytes.create (header_bytes + len) in
  Util.Bin.put_u32 b 0 (next + 1);
  Util.Bin.put_u32 b 4 len;
  Bytes.blit payload pos b header_bytes len;
  b

let decode_header chunk =
  if Bytes.length chunk < header_bytes then raise (Store.Corrupt "Chain: chunk too short");
  let next = Util.Bin.get_u32 chunk 0 - 1 in
  let len = Util.Bin.get_u32 chunk 4 in
  if Bytes.length chunk < header_bytes + len then
    raise (Store.Corrupt "Chain: chunk payload truncated");
  (next, len)

let check_pool pool =
  match Policy.max_payload (Store.pool_policy pool) with
  | Some _ -> invalid_arg "Chain: chains require a packed pool"
  | None -> ()

let store ~pool ~chunk_payload value =
  if chunk_payload <= 0 then invalid_arg "Chain.store: chunk_payload must be positive";
  check_pool pool;
  let total = Bytes.length value in
  (* Allocate back to front so each chunk knows its successor's id. *)
  let rec chunk_starts pos acc =
    if pos >= total then List.rev acc
    else chunk_starts (pos + chunk_payload) (pos :: acc)
  in
  let starts = match chunk_starts 0 [] with [] -> [ 0 ] | s -> s in
  List.fold_left
    (fun next pos ->
      let len = min chunk_payload (total - pos) in
      let len = max len 0 in
      Store.allocate pool (encode_chunk ~next value ~pos ~len))
    (-1) (List.rev starts)

let fold_chunks store head ~init ~f =
  let rec go oid acc =
    if oid < 0 then acc
    else begin
      let chunk = Store.get store oid in
      let next, len = decode_header chunk in
      go next (f acc (Bytes.sub chunk header_bytes len))
    end
  in
  go head init

let length store head =
  let rec go oid acc =
    if oid < 0 then acc
    else begin
      let chunk = Store.get store oid in
      let next, len = decode_header chunk in
      go next (acc + len)
    end
  in
  go head 0

let iter_chunks store head f = fold_chunks store head ~init:() ~f:(fun () payload -> f payload)

let chunk_count store head = fold_chunks store head ~init:0 ~f:(fun n _ -> n + 1)

let fetch store head =
  let parts = List.rev (fold_chunks store head ~init:[] ~f:(fun acc p -> p :: acc)) in
  Bytes.concat Bytes.empty parts

let fetch_prefix store head ~len =
  if len < 0 then invalid_arg "Chain.fetch_prefix: negative length";
  let buf = Buffer.create (min len 65536) in
  let rec go oid remaining =
    if remaining > 0 && oid >= 0 then begin
      let chunk = Store.get store oid in
      let next, clen = decode_header chunk in
      let take = min clen remaining in
      Buffer.add_subbytes buf chunk header_bytes take;
      go next (remaining - take)
    end
  in
  go head len;
  Buffer.to_bytes buf

(* Walk to the tail, returning (tail oid, tail chunk bytes). *)
let tail_of store head =
  let rec go oid =
    let chunk = Store.get store oid in
    let next, _ = decode_header chunk in
    if next < 0 then (oid, chunk) else go next
  in
  go head

let append store ~pool ~chunk_payload head extra =
  if chunk_payload <= 0 then invalid_arg "Chain.append: chunk_payload must be positive";
  check_pool pool;
  let extra_len = Bytes.length extra in
  if extra_len > 0 then begin
    let tail_oid, tail_chunk = tail_of store head in
    let _, tail_len = decode_header tail_chunk in
    let room = max 0 (chunk_payload - tail_len) in
    let into_tail = min room extra_len in
    let remaining = extra_len - into_tail in
    (* Chunks for the remainder, allocated back to front. *)
    let rec starts pos acc =
      if pos >= remaining then acc else starts (pos + chunk_payload) (pos :: acc)
    in
    let next_of_tail =
      List.fold_left
        (fun next pos ->
          let len = min chunk_payload (remaining - pos) in
          let b = Bytes.create (header_bytes + len) in
          Util.Bin.put_u32 b 0 (next + 1);
          Util.Bin.put_u32 b 4 len;
          Bytes.blit extra (into_tail + pos) b header_bytes len;
          Store.allocate pool b)
        (-1)
        (starts 0 [])
    in
    (* Rebuild the tail with its topped-up payload and new next link. *)
    let new_tail = Bytes.create (header_bytes + tail_len + into_tail) in
    Util.Bin.put_u32 new_tail 0 (next_of_tail + 1);
    Util.Bin.put_u32 new_tail 4 (tail_len + into_tail);
    Bytes.blit tail_chunk header_bytes new_tail header_bytes tail_len;
    Bytes.blit extra 0 new_tail (header_bytes + tail_len) into_tail;
    Store.modify store tail_oid new_tail
  end

let delete store head =
  let rec go oid =
    if oid >= 0 then begin
      let chunk = Store.get store oid in
      let next, _ = decode_header chunk in
      Store.delete store oid;
      go next
    end
  in
  go head
