(** Mneme object identifiers.

    An object id is unique within its file.  Ids are structured: every
    255 consecutive ids form a {e logical segment}, the unit Mneme uses
    for identification, indexing and location.  When several files are
    open simultaneously, file-local ids are mapped to globally unique
    ids; the global id space is bounded at 2^28, which bounds the number
    of objects accessible at once (as in the paper). *)

type t = int
(** A file-local object id, [0 <= t < 2^28]. *)

val slots_per_lseg : int
(** 255, per the paper. *)

val lseg : t -> int
(** Logical segment number of an id. *)

val slot : t -> int
(** Position of the id within its logical segment, [0 .. 254]. *)

val make : lseg:int -> slot:int -> t
(** Inverse of [lseg]/[slot].  Raises [Invalid_argument] if [slot] is
    outside [0 .. 254], [lseg] is negative, or the result exceeds the
    28-bit id space. *)

val max_id : t
(** Largest representable file-local id. *)

(** Globally unique ids for multi-file stores: the file handle occupies
    the bits above the 28-bit local id. *)
module Global : sig
  type gid = private int

  val make : file_handle:int -> t -> gid
  (** Raises [Invalid_argument] if [file_handle] is negative or the
      local id is out of range. *)

  val file_handle : gid -> int
  val local : gid -> t
end
