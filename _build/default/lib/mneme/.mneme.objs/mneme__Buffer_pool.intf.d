lib/mneme/buffer_pool.mli:
