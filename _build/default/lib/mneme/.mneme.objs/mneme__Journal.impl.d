lib/mneme/journal.ml: Buffer Bytes List Util Vfs
