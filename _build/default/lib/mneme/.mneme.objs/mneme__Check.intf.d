lib/mneme/check.mli: Format Store
