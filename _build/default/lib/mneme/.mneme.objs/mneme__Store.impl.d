lib/mneme/store.ml: Array Buffer Buffer_pool Bytes Hashtbl Journal List Oid Policy Printf Util Vfs
