lib/mneme/check.ml: Array Bytes Format List Oid Policy Printf Store
