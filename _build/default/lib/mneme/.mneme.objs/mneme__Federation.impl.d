lib/mneme/federation.ml: Hashtbl List Oid Store
