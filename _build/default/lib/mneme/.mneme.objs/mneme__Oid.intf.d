lib/mneme/oid.mli:
