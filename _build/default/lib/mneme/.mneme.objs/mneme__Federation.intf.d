lib/mneme/federation.mli: Oid Store
