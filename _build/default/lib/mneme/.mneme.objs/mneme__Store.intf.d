lib/mneme/store.mli: Buffer_pool Journal Oid Policy Vfs
