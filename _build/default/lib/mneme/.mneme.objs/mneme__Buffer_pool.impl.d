lib/mneme/buffer_pool.ml: Bytes Hashtbl
