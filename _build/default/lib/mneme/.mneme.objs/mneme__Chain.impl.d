lib/mneme/chain.ml: Buffer Bytes List Policy Store Util
