lib/mneme/policy.ml: Oid Util
