lib/mneme/oid.ml:
