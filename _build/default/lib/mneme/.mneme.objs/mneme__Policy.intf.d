lib/mneme/policy.mli: Buffer
