lib/mneme/chain.mli: Oid Store
