lib/mneme/journal.mli: Vfs
