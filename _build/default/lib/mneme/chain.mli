(** Chained large objects via inter-object references.

    The paper's Section 6: "Inter-object references allow structures
    such as linked lists to be used to break large objects into more
    manageable pieces.  This could provide better support for inverted
    list updates and allow incremental retrieval of large aggregate
    objects."  This module is that structure: a value of any size is
    stored as a linked list of fixed-payload chunk objects, each chunk
    carrying the id of the next.

    Chunk object format: [next_oid + 1 (u32, 0 = end)] [payload length
    (u32)] [payload].  All chunks of a chain live in the pool the head
    was allocated in; the head id identifies the chain.

    Benefits demonstrated here and exercised in the tests and benches:
    - {!fetch_prefix} reads only the chunks a prefix needs (incremental
      retrieval of a large aggregate);
    - {!append} grows a chain by filling the tail chunk and linking
      fresh ones, without rewriting or relocating earlier chunks — the
      update story the monolithic representation lacks. *)

val header_bytes : int
(** Per-chunk overhead (8 bytes). *)

val store : pool:Store.pool -> chunk_payload:int -> bytes -> Oid.t
(** [store ~pool ~chunk_payload value] writes [value] as a chain of
    chunks holding at most [chunk_payload] bytes each and returns the
    head id.  An empty value yields a single empty chunk.  Raises
    [Invalid_argument] if [chunk_payload <= 0] or exceeds a fixed-slot
    pool's payload bound (chains belong in packed pools). *)

val length : Store.t -> Oid.t -> int
(** Total payload bytes, walking the chain headers.
    Raises [Not_found] if the head does not exist and
    {!Store.Corrupt} on a malformed chunk. *)

val fetch : Store.t -> Oid.t -> bytes
(** Reassemble the whole value. *)

val fetch_prefix : Store.t -> Oid.t -> len:int -> bytes
(** [fetch_prefix store head ~len] returns the first [min len length]
    bytes, faulting only the chunks that cover the prefix.  Raises
    [Invalid_argument] if [len < 0]. *)

val iter_chunks : Store.t -> Oid.t -> (bytes -> unit) -> unit
(** Apply to each chunk's payload in order. *)

val chunk_count : Store.t -> Oid.t -> int

val append : Store.t -> pool:Store.pool -> chunk_payload:int -> Oid.t -> bytes -> unit
(** [append store ~pool ~chunk_payload head extra] extends the chain:
    the tail chunk is topped up to [chunk_payload] bytes in place and
    the remainder goes into freshly linked chunks allocated from
    [pool]. *)

val delete : Store.t -> Oid.t -> unit
(** Delete every chunk of the chain. *)
