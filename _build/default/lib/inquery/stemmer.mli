(** The Porter stemming algorithm (Porter, 1980).

    INQUERY conflates morphological variants at indexing and query time;
    this is a faithful implementation of the original algorithm's five
    steps.  Input must be a lowercase ASCII word (as produced by
    {!Lexer}); words of one or two letters are returned unchanged, per
    the algorithm. *)

val stem : string -> string
