type t =
  | Term of string
  | Phrase of string list
  | Od of int * string list
  | Uw of int * string list
  | Syn of string list
  | Sum of t list
  | Wsum of (float * t) list
  | And of t list
  | Or of t list
  | Not of t
  | Max of t list

(* --- lexing ------------------------------------------------------- *)

type tok = Lparen | Rparen | Op of string | Word of string | Number of float

exception Parse_error of string

let lex input =
  let n = String.length input in
  let toks = ref [] in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
    || c = '.' || c = '-'
  in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = ',' then incr i
    else if c = '(' then begin
      toks := Lparen :: !toks;
      incr i
    end
    else if c = ')' then begin
      toks := Rparen :: !toks;
      incr i
    end
    else if c = '#' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && is_word input.[!j] do
        incr j
      done;
      if !j = start then raise (Parse_error "empty operator name after '#'");
      toks := Op (String.lowercase_ascii (String.sub input start (!j - start))) :: !toks;
      i := !j
    end
    else if is_word c then begin
      let start = !i in
      let j = ref start in
      while !j < n && is_word input.[!j] do
        incr j
      done;
      let word = String.sub input start (!j - start) in
      i := !j;
      (* A token that parses as a number is a weight (inside #wsum). *)
      match float_of_string_opt word with
      | Some f when String.exists (fun c -> c = '.' || (c >= '0' && c <= '9')) word ->
        toks := Number f :: !toks
      | Some _ | None -> toks := Word (String.lowercase_ascii word) :: !toks
    end
    else raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev !toks

(* --- parsing ------------------------------------------------------ *)

let rec parse_node toks =
  match toks with
  | Word w :: rest -> (Term w, rest)
  | Number f :: rest ->
    (* a numeric word outside #wsum is just a term, e.g. "1994" *)
    (Term (if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f), rest)
  | Op op :: Lparen :: rest -> parse_operator op rest
  | Op op :: _ -> raise (Parse_error (Printf.sprintf "operator #%s must be followed by '('" op))
  | Lparen :: _ -> raise (Parse_error "unexpected '('")
  | Rparen :: _ -> raise (Parse_error "unexpected ')'")
  | [] -> raise (Parse_error "unexpected end of query")

and parse_list toks =
  match toks with
  | Rparen :: rest -> ([], rest)
  | _ ->
    let node, rest = parse_node toks in
    let nodes, rest = parse_list rest in
    (node :: nodes, rest)

and parse_weighted toks =
  match toks with
  | Rparen :: rest -> ([], rest)
  | Number w :: rest ->
    let node, rest = parse_node rest in
    let pairs, rest = parse_weighted rest in
    ((w, node) :: pairs, rest)
  | _ -> raise (Parse_error "#wsum expects alternating weight and node")

and parse_phrase_terms toks =
  match toks with
  | Rparen :: rest -> ([], rest)
  | Word w :: rest ->
    let words, rest = parse_phrase_terms rest in
    (w :: words, rest)
  | Number f :: rest ->
    let words, rest = parse_phrase_terms rest in
    let w = if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f in
    (w :: words, rest)
  | _ -> raise (Parse_error "#phrase takes bare terms only")

and parse_operator op rest =
  match op with
  | "sum" ->
    let nodes, rest = parse_list rest in
    (Sum nodes, rest)
  | "and" ->
    let nodes, rest = parse_list rest in
    (And nodes, rest)
  | "or" ->
    let nodes, rest = parse_list rest in
    (Or nodes, rest)
  | "max" ->
    let nodes, rest = parse_list rest in
    (Max nodes, rest)
  | "wsum" ->
    let pairs, rest = parse_weighted rest in
    (Wsum pairs, rest)
  | "not" -> (
    let nodes, rest = parse_list rest in
    match nodes with
    | [ node ] -> (Not node, rest)
    | _ -> raise (Parse_error "#not takes exactly one argument"))
  | "phrase" ->
    let words, rest = parse_phrase_terms rest in
    if words = [] then raise (Parse_error "#phrase requires at least one term");
    (Phrase words, rest)
  | "syn" ->
    let words, rest = parse_phrase_terms rest in
    if words = [] then raise (Parse_error "#syn requires at least one term");
    (Syn words, rest)
  | other -> (
    (* #odN / #uwN: a window operator with its width in the name. *)
    let windowed prefix =
      if String.length other > String.length prefix
         && String.sub other 0 (String.length prefix) = prefix
      then
        int_of_string_opt
          (String.sub other (String.length prefix) (String.length other - String.length prefix))
      else None
    in
    match (windowed "od", windowed "uw") with
    | Some n, _ when n >= 1 ->
      let words, rest = parse_phrase_terms rest in
      if List.length words < 2 then raise (Parse_error "#od requires at least two terms");
      (Od (n, words), rest)
    | _, Some n when n >= 1 ->
      let words, rest = parse_phrase_terms rest in
      if List.length words < 2 then raise (Parse_error "#uw requires at least two terms");
      (Uw (n, words), rest)
    | _ -> raise (Parse_error (Printf.sprintf "unknown operator #%s" other)))

let parse input =
  try
    let toks = lex input in
    let nodes, rest =
      let rec all toks =
        match toks with
        | [] -> ([], [])
        | _ ->
          let node, rest = parse_node toks in
          let nodes, rest = all rest in
          (node :: nodes, rest)
      in
      all toks
    in
    match (nodes, rest) with
    | [], _ -> Error "empty query"
    | [ node ], [] -> Ok node
    | nodes, [] -> Ok (Sum nodes)
    | _, _ -> Error "trailing tokens"
  with Parse_error msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok q -> q
  | Error msg -> invalid_arg ("Query.parse_exn: " ^ msg)

let terms q =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add w =
    if not (Hashtbl.mem seen w) then begin
      Hashtbl.add seen w ();
      out := w :: !out
    end
  in
  let rec go = function
    | Term w -> add w
    | Phrase ws | Od (_, ws) | Uw (_, ws) | Syn ws -> List.iter add ws
    | Sum ns | And ns | Or ns | Max ns -> List.iter go ns
    | Wsum pairs -> List.iter (fun (_, n) -> go n) pairs
    | Not n -> go n
  in
  go q;
  List.rev !out

let rec node_count = function
  | Term _ -> 1
  | Phrase ws | Od (_, ws) | Uw (_, ws) | Syn ws -> 1 + List.length ws
  | Sum ns | And ns | Or ns | Max ns -> 1 + List.fold_left (fun a n -> a + node_count n) 0 ns
  | Wsum pairs -> 1 + List.fold_left (fun a (_, n) -> a + node_count n) 0 pairs
  | Not n -> 1 + node_count n

let rec to_string = function
  | Term w -> w
  | Phrase ws -> Printf.sprintf "#phrase( %s )" (String.concat " " ws)
  | Od (n, ws) -> Printf.sprintf "#od%d( %s )" n (String.concat " " ws)
  | Uw (n, ws) -> Printf.sprintf "#uw%d( %s )" n (String.concat " " ws)
  | Syn ws -> Printf.sprintf "#syn( %s )" (String.concat " " ws)
  | Sum ns -> op_to_string "sum" ns
  | And ns -> op_to_string "and" ns
  | Or ns -> op_to_string "or" ns
  | Max ns -> op_to_string "max" ns
  | Not n -> Printf.sprintf "#not( %s )" (to_string n)
  | Wsum pairs ->
    Printf.sprintf "#wsum( %s )"
      (String.concat " " (List.map (fun (w, n) -> Printf.sprintf "%g %s" w (to_string n)) pairs))

and op_to_string name ns =
  Printf.sprintf "#%s( %s )" name (String.concat " " (List.map to_string ns))
