(** Inverted list records.

    One record per term: a header of summary statistics followed by, for
    each document containing the term, the document id, the
    within-document frequency, and the term's positions — "a vector of
    integers in a compressed format" (delta + v-byte coding, which is
    where INQUERY's ~60 % compression came from).

    Record layout (all v-byte):
    [df] [cf] then per document (ascending id):
    [doc gap] [tf] [tf position gaps].

    The decoder offers folds that skip position data cheaply, because
    term-at-a-time belief evaluation only needs (doc, tf) pairs. *)

type doc_postings = { doc : int; positions : int list }
(** Positions are ascending token indexes; [tf] is their length. *)

val encode : (int * int list) list -> bytes
(** [encode entries] builds a record from [(doc, positions)] pairs with
    strictly ascending doc ids and, per doc, strictly ascending
    positions (each doc must have at least one position).  Raises
    [Invalid_argument] on violations. *)

val stats : bytes -> int * int
(** [(df, cf)] from the header. *)

val fold_docs : bytes -> init:'a -> f:('a -> doc:int -> tf:int -> 'a) -> 'a
(** Fold over documents, skipping position decoding (gaps are still
    scanned byte-wise, as INQUERY must). *)

val fold_positions : bytes -> init:'a -> f:('a -> doc_postings -> 'a) -> 'a
(** Fold with full position lists (phrase evaluation). *)

val decode : bytes -> doc_postings list

val doc_count : bytes -> int
(** Same as [fst (stats b)]. *)

val merge : bytes -> bytes -> bytes
(** [merge a b] combines two records for the same term whose document
    sets are disjoint (e.g. an existing record and the postings of newly
    added documents).  Raises [Invalid_argument] if doc ids collide. *)

val remove_docs : bytes -> (int -> bool) -> bytes option
(** [remove_docs rec p] drops every document matched by [p]; [None] if
    the record becomes empty — document-deletion support. *)
