type organisation = Sequential | Bit_sliced

let magic = "SIGF"
let header_size = 32

(* Header: magic(4) width u32 k u32 organisation u8 n_docs u32. *)

type t = {
  file : Vfs.file;
  width : int;
  k : int;
  organisation : organisation;
  n_docs : int;
  sig_bytes : int; (* bytes per document signature (sequential) *)
  slice_bytes : int; (* bytes per bit slice (bit-sliced) *)
}

(* Term bit selection: k probes from two independent FNV-style hashes
   (standard double hashing). *)
let hash_seeded seed s =
  let h = ref (0x811c9dc5 lxor (seed * 0x9e3779b1)) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193;
      h := !h land max_int)
    s;
  !h

let term_bit_positions ~width ~k term =
  let h1 = hash_seeded 1 term and h2 = hash_seeded 2 term in
  let h2 = if h2 mod width = 0 then h2 + 1 else h2 in
  List.init k (fun i -> (h1 + (i * h2)) mod width |> abs)

let write_header t =
  let b = Bytes.make header_size '\000' in
  Bytes.blit_string magic 0 b 0 4;
  Util.Bin.put_u32 b 4 t.width;
  Util.Bin.put_u32 b 8 t.k;
  Util.Bin.put_u8 b 12 (match t.organisation with Sequential -> 0 | Bit_sliced -> 1);
  Util.Bin.put_u32 b 13 t.n_docs;
  Vfs.write t.file ~off:0 b

let build vfs ~file ~width ~k ?(organisation = Sequential) ~n_docs docs =
  if width <= 0 || width mod 8 <> 0 then
    invalid_arg "Sigfile.build: width must be a positive multiple of 8";
  if k <= 0 || k > width then invalid_arg "Sigfile.build: k must be in (0, width]";
  if n_docs <= 0 then invalid_arg "Sigfile.build: n_docs must be positive";
  let f = Vfs.open_file vfs file in
  Vfs.truncate f 0;
  let sig_bytes = width / 8 in
  let slice_bytes = (n_docs + 7) / 8 in
  let t = { file = f; width; k; organisation; n_docs; sig_bytes; slice_bytes } in
  write_header t;
  (* Build the whole matrix in memory (documents x width bits), then lay
     it out according to the organisation. *)
  let matrix = Array.init n_docs (fun _ -> Bytes.make sig_bytes '\000') in
  Seq.iter
    (fun (doc, terms) ->
      if doc < 0 || doc >= n_docs then invalid_arg "Sigfile.build: document id out of range";
      let signature = matrix.(doc) in
      Array.iter
        (fun term ->
          List.iter
            (fun bit ->
              let byte = bit / 8 and off = bit mod 8 in
              Bytes.set signature byte
                (Char.chr (Char.code (Bytes.get signature byte) lor (0x80 lsr off))))
            (term_bit_positions ~width ~k term))
        terms)
    docs;
  (match organisation with
  | Sequential ->
    Array.iteri (fun doc signature -> Vfs.write f ~off:(header_size + (doc * sig_bytes)) signature) matrix
  | Bit_sliced ->
    for bit = 0 to width - 1 do
      let slice = Bytes.make slice_bytes '\000' in
      for doc = 0 to n_docs - 1 do
        let byte = bit / 8 and off = bit mod 8 in
        if Char.code (Bytes.get matrix.(doc) byte) land (0x80 lsr off) <> 0 then begin
          let dbyte = doc / 8 and doff = doc mod 8 in
          Bytes.set slice dbyte (Char.chr (Char.code (Bytes.get slice dbyte) lor (0x80 lsr doff)))
        end
      done;
      Vfs.write f ~off:(header_size + (bit * slice_bytes)) slice
    done);
  t

let open_existing vfs ~file =
  if not (Vfs.file_exists vfs file) then failwith ("Sigfile.open_existing: no such file: " ^ file);
  let f = Vfs.open_file vfs file in
  if Vfs.size f < header_size then failwith "Sigfile.open_existing: truncated header";
  let b = Vfs.read f ~off:0 ~len:header_size in
  if Bytes.sub_string b 0 4 <> magic then failwith "Sigfile.open_existing: bad magic";
  let width = Util.Bin.get_u32 b 4 in
  let k = Util.Bin.get_u32 b 8 in
  let organisation = if Util.Bin.get_u8 b 12 = 0 then Sequential else Bit_sliced in
  let n_docs = Util.Bin.get_u32 b 13 in
  { file = f; width; k; organisation; n_docs; sig_bytes = width / 8; slice_bytes = (n_docs + 7) / 8 }

let width t = t.width
let k t = t.k
let organisation t = t.organisation
let n_docs t = t.n_docs
let file_size t = Vfs.size t.file

let query_bits t terms =
  List.concat_map (fun term -> term_bit_positions ~width:t.width ~k:t.k term) terms
  |> List.sort_uniq compare

let candidates t terms =
  let bits = query_bits t terms in
  match t.organisation with
  | Sequential ->
    (* Scan every signature; a candidate covers all probe bits. *)
    let out = ref [] in
    for doc = t.n_docs - 1 downto 0 do
      let signature = Vfs.read t.file ~off:(header_size + (doc * t.sig_bytes)) ~len:t.sig_bytes in
      let covered =
        List.for_all
          (fun bit -> Char.code (Bytes.get signature (bit / 8)) land (0x80 lsr (bit mod 8)) <> 0)
          bits
      in
      if covered then out := doc :: !out
    done;
    !out
  | Bit_sliced -> (
    (* AND together only the probed slices. *)
    match bits with
    | [] -> List.init t.n_docs Fun.id
    | first :: rest ->
      let acc = Vfs.read t.file ~off:(header_size + (first * t.slice_bytes)) ~len:t.slice_bytes in
      List.iter
        (fun bit ->
          let slice = Vfs.read t.file ~off:(header_size + (bit * t.slice_bytes)) ~len:t.slice_bytes in
          for i = 0 to t.slice_bytes - 1 do
            Bytes.set acc i (Char.chr (Char.code (Bytes.get acc i) land Char.code (Bytes.get slice i)))
          done)
        rest;
      let out = ref [] in
      for doc = t.n_docs - 1 downto 0 do
        if Char.code (Bytes.get acc (doc / 8)) land (0x80 lsr (doc mod 8)) <> 0 then
          out := doc :: !out
      done;
      !out)

let term_bits t term = List.sort_uniq compare (term_bit_positions ~width:t.width ~k:t.k term)
