type source = {
  fetch : Dictionary.entry -> bytes option;
  n_docs : int;
  max_doc_id : int;
  avg_doc_len : float;
  doc_len : int -> int;
}

type stats = {
  mutable postings_scored : int;
  mutable nodes_visited : int;
  mutable record_lookups : int;
}

let default_belief = 0.4

let idf_weight ~n_docs ~df =
  if df <= 0 then 0.0
  else log ((float_of_int n_docs +. 0.5) /. float_of_int df) /. log (float_of_int n_docs +. 1.0)

let tf_weight ~tf ~dl ~avg_dl =
  let tf = float_of_int tf in
  let norm = if avg_dl > 0.0 then float_of_int dl /. avg_dl else 1.0 in
  tf /. (tf +. 0.5 +. (1.5 *. norm))

let belief ~n_docs ~df ~tf ~dl ~avg_dl =
  default_belief +. (0.6 *. tf_weight ~tf ~dl ~avg_dl *. idf_weight ~n_docs ~df)

(* --- positional leaf matching -------------------------------------- *)

(* doc -> sorted position array, counting the postings examined. *)
let position_table examined record =
  let tbl = Hashtbl.create 64 in
  Postings.fold_positions record ~init:() ~f:(fun () dp ->
      examined := !examined + List.length dp.Postings.positions;
      Hashtbl.replace tbl dp.Postings.doc (Array.of_list dp.Postings.positions));
  tbl

(* Smallest element of the sorted array strictly greater than [q]. *)
let successor arr q =
  let n = Array.length arr in
  let rec go lo hi = if lo >= hi then lo else begin
      let mid = (lo + hi) / 2 in
      if arr.(mid) <= q then go (mid + 1) hi else go lo mid
    end
  in
  let i = go 0 n in
  if i >= n then None else Some arr.(i)

let sort_matches matches = List.sort (fun (a, _) (b, _) -> compare a b) matches

(* Ordered window: chains t1 < t2 < ... with each step within [window]
   positions.  [#phrase] is the window-1 case (strictly increasing
   positions make "within 1" mean "exactly adjacent"). *)
let od_doc_tfs ~window records =
  match records with
  | [] -> ([], 0)
  | first :: rest ->
    let examined = ref 0 in
    let first_tbl = position_table examined first in
    let rest_tbls = List.map (position_table examined) rest in
    let matches = ref [] in
    Hashtbl.iter
      (fun doc ps1 ->
        if List.for_all (fun tbl -> Hashtbl.mem tbl doc) rest_tbls then begin
          let rec chain q = function
            | [] -> true
            | tbl :: more -> (
              match successor (Hashtbl.find tbl doc) q with
              | Some q' when q' <= q + window -> chain q' more
              | Some _ | None -> false)
          in
          let tf = Array.fold_left (fun acc p -> if chain p rest_tbls then acc + 1 else acc) 0 ps1 in
          if tf > 0 then matches := (doc, tf) :: !matches
        end)
      first_tbl;
    (sort_matches !matches, !examined)

let phrase_doc_tfs records = od_doc_tfs ~window:1 records

(* Unordered window: all members within a span of [window] positions.
   Sliding scan: repeatedly take the member currently at the smallest
   position; if the current span fits the window, count a match. *)
let uw_doc_tfs ~window records =
  match records with
  | [] -> ([], 0)
  | first :: rest ->
    let examined = ref 0 in
    let first_tbl = position_table examined first in
    let rest_tbls = List.map (position_table examined) rest in
    let matches = ref [] in
    Hashtbl.iter
      (fun doc ps1 ->
        if List.for_all (fun tbl -> Hashtbl.mem tbl doc) rest_tbls then begin
          let arrays = Array.of_list (ps1 :: List.map (fun tbl -> Hashtbl.find tbl doc) rest_tbls) in
          let k = Array.length arrays in
          let idx = Array.make k 0 in
          let tf = ref 0 in
          let exhausted = ref false in
          while not !exhausted do
            let lo_i = ref 0 and lo = ref arrays.(0).(idx.(0)) and hi = ref arrays.(0).(idx.(0)) in
            for i = 1 to k - 1 do
              let v = arrays.(i).(idx.(i)) in
              if v < !lo then begin
                lo := v;
                lo_i := i
              end;
              if v > !hi then hi := v
            done;
            if !hi - !lo < window then incr tf;
            idx.(!lo_i) <- idx.(!lo_i) + 1;
            if idx.(!lo_i) >= Array.length arrays.(!lo_i) then exhausted := true
          done;
          if !tf > 0 then matches := (doc, !tf) :: !matches
        end)
      first_tbl;
    (sort_matches !matches, !examined)

(* Synonym class: the members behave as one term whose inverted list is
   the union of theirs (tf sums per document). *)
let syn_doc_tfs records =
  let examined = ref 0 in
  let sums = Hashtbl.create 64 in
  List.iter
    (fun record ->
      Postings.fold_docs record ~init:() ~f:(fun () ~doc ~tf ->
          incr examined;
          let prev = try Hashtbl.find sums doc with Not_found -> 0 in
          Hashtbl.replace sums doc (prev + tf)))
    records;
  (sort_matches (Hashtbl.fold (fun doc tf acc -> (doc, tf) :: acc) sums []), !examined)

let eval source dict ?stopwords ?(stem = false) query =
  let n = source.max_doc_id + 1 in
  let stats = { postings_scored = 0; nodes_visited = 0; record_lookups = 0 } in
  let normalize term =
    let drop =
      match stopwords with Some sw -> Stopwords.is_stopword sw term | None -> false
    in
    if drop then None else Some (if stem then Stemmer.stem term else term)
  in
  let default_array () = Array.make n default_belief in
  let term_beliefs term =
    let beliefs = default_array () in
    (match normalize term with
    | None -> ()
    | Some term -> (
      match Dictionary.find dict term with
      | None -> ()
      | Some entry -> (
        stats.record_lookups <- stats.record_lookups + 1;
        match source.fetch entry with
        | None -> ()
        | Some record ->
          let df, _ = Postings.stats record in
          Postings.fold_docs record ~init:() ~f:(fun () ~doc ~tf ->
              stats.postings_scored <- stats.postings_scored + 1;
              if doc < n then
                beliefs.(doc) <-
                  belief ~n_docs:source.n_docs ~df ~tf ~dl:(source.doc_len doc)
                    ~avg_dl:source.avg_doc_len))));
    beliefs
  in
  let fetch_member w =
    match normalize w with
    | None -> None
    | Some w -> (
      match Dictionary.find dict w with
      | None -> None
      | Some entry ->
        stats.record_lookups <- stats.record_lookups + 1;
        source.fetch entry)
  in
  (* Positional leaves (#phrase/#od/#uw) require every member record;
     #syn takes the union of whichever members exist. *)
  let positional_beliefs ~require_all matcher words =
    let beliefs = default_array () in
    let records = List.map fetch_member words in
    let usable =
      if require_all then
        if List.for_all Option.is_some records && records <> [] then
          Some (List.map Option.get records)
        else None
      else begin
        match List.filter_map Fun.id records with [] -> None | rs -> Some rs
      end
    in
    (match usable with
    | None -> ()
    | Some records ->
      let matches, examined = matcher records in
      stats.postings_scored <- stats.postings_scored + examined;
      let df = List.length matches in
      List.iter
        (fun (doc, tf) ->
          if doc < n then
            beliefs.(doc) <-
              belief ~n_docs:source.n_docs ~df ~tf ~dl:(source.doc_len doc)
                ~avg_dl:source.avg_doc_len)
        matches);
    beliefs
  in
  let combine nodes ~init ~f ~finish =
    match nodes with
    | [] -> default_array ()
    | arrays ->
      let out = Array.make n init in
      List.iter (fun a -> Array.iteri (fun d b -> out.(d) <- f out.(d) b) a) arrays;
      let k = List.length arrays in
      Array.map_inplace (fun acc -> finish acc k) out;
      out
  in
  let rec node q =
    stats.nodes_visited <- stats.nodes_visited + 1;
    match q with
    | Query.Term w -> term_beliefs w
    | Query.Phrase ws -> positional_beliefs ~require_all:true phrase_doc_tfs ws
    | Query.Od (window, ws) -> positional_beliefs ~require_all:true (od_doc_tfs ~window) ws
    | Query.Uw (window, ws) -> positional_beliefs ~require_all:true (uw_doc_tfs ~window) ws
    | Query.Syn ws -> positional_beliefs ~require_all:false syn_doc_tfs ws
    | Query.Sum ns ->
      combine (List.map node ns) ~init:0.0 ~f:( +. ) ~finish:(fun acc k ->
          acc /. float_of_int k)
    | Query.And ns ->
      combine (List.map node ns) ~init:1.0 ~f:( *. ) ~finish:(fun acc _ -> acc)
    | Query.Or ns ->
      combine (List.map node ns) ~init:1.0
        ~f:(fun acc b -> acc *. (1.0 -. b))
        ~finish:(fun acc _ -> 1.0 -. acc)
    | Query.Max ns ->
      combine (List.map node ns) ~init:0.0 ~f:Float.max ~finish:(fun acc _ -> acc)
    | Query.Not inner ->
      let a = node inner in
      Array.map (fun b -> 1.0 -. b) a
    | Query.Wsum pairs ->
      let total_w = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 pairs in
      if total_w <= 0.0 then default_array ()
      else begin
        let out = Array.make n 0.0 in
        List.iter
          (fun (w, sub) ->
            let a = node sub in
            Array.iteri (fun d b -> out.(d) <- out.(d) +. (w *. b)) a)
          pairs;
        Array.map_inplace (fun acc -> acc /. total_w) out;
        out
      end
  in
  let beliefs = node query in
  (beliefs, stats)

(* ------------------------------------------------------------------ *)
(* Document-at-a-time evaluation                                       *)

type scored = { doc : int; belief : float }

(* The query tree with leaf cursors over decoded (doc, tf) postings. *)
type dnode =
  | DLeaf of { docs : (int * int) array; df : int; mutable pos : int }
  | DAbsent (* stop word / out-of-vocabulary: contributes the default *)
  | DSum of dnode list
  | DWsum of (float * dnode) list
  | DAnd of dnode list
  | DOr of dnode list
  | DMax of dnode list
  | DNot of dnode

let eval_daat source dict ?stopwords ?(stem = false) query =
  let stats = { postings_scored = 0; nodes_visited = 0; record_lookups = 0 } in
  let normalize term =
    let drop =
      match stopwords with Some sw -> Stopwords.is_stopword sw term | None -> false
    in
    if drop then None else Some (if stem then Stemmer.stem term else term)
  in
  let term_leaf term =
    match normalize term with
    | None -> DAbsent
    | Some term -> (
      match Dictionary.find dict term with
      | None -> DAbsent
      | Some entry -> (
        stats.record_lookups <- stats.record_lookups + 1;
        match source.fetch entry with
        | None -> DAbsent
        | Some record ->
          let df, _ = Postings.stats record in
          let docs =
            Postings.fold_docs record ~init:[] ~f:(fun acc ~doc ~tf -> (doc, tf) :: acc)
            |> List.rev |> Array.of_list
          in
          DLeaf { docs; df; pos = 0 }))
  in
  let positional_leaf ~require_all matcher words =
    let records =
      List.map
        (fun w ->
          match normalize w with
          | None -> None
          | Some w -> (
            match Dictionary.find dict w with
            | None -> None
            | Some entry ->
              stats.record_lookups <- stats.record_lookups + 1;
              source.fetch entry))
        words
    in
    let usable =
      if require_all then
        if List.for_all Option.is_some records && records <> [] then
          Some (List.map Option.get records)
        else None
      else begin
        match List.filter_map Fun.id records with [] -> None | rs -> Some rs
      end
    in
    match usable with
    | None -> DAbsent
    | Some records ->
      let matches, examined = matcher records in
      stats.postings_scored <- stats.postings_scored + examined;
      DLeaf { docs = Array.of_list matches; df = List.length matches; pos = 0 }
  in
  let rec build q =
    stats.nodes_visited <- stats.nodes_visited + 1;
    match q with
    | Query.Term w -> term_leaf w
    | Query.Phrase ws -> positional_leaf ~require_all:true phrase_doc_tfs ws
    | Query.Od (window, ws) -> positional_leaf ~require_all:true (od_doc_tfs ~window) ws
    | Query.Uw (window, ws) -> positional_leaf ~require_all:true (uw_doc_tfs ~window) ws
    | Query.Syn ws -> positional_leaf ~require_all:false syn_doc_tfs ws
    | Query.Sum ns -> DSum (List.map build ns)
    | Query.Wsum ps -> DWsum (List.map (fun (w, n) -> (w, build n)) ps)
    | Query.And ns -> DAnd (List.map build ns)
    | Query.Or ns -> DOr (List.map build ns)
    | Query.Max ns -> DMax (List.map build ns)
    | Query.Not n -> DNot (build n)
  in
  let tree = build query in
  (* All leaves, for the frontier scan. *)
  let leaves = ref [] in
  let rec collect = function
    | DLeaf _ as l -> leaves := l :: !leaves
    | DAbsent -> ()
    | DSum ns | DAnd ns | DOr ns | DMax ns -> List.iter collect ns
    | DWsum ps -> List.iter (fun (_, n) -> collect n) ps
    | DNot n -> collect n
  in
  collect tree;
  let frontier () =
    List.fold_left
      (fun acc l ->
        match l with
        | DLeaf c when c.pos < Array.length c.docs ->
          let d = fst c.docs.(c.pos) in
          (match acc with None -> Some d | Some m -> Some (min m d))
        | _ -> acc)
      None !leaves
  in
  let rec score node d =
    match node with
    | DAbsent -> default_belief
    | DLeaf c ->
      if c.pos < Array.length c.docs && fst c.docs.(c.pos) = d then begin
        let _, tf = c.docs.(c.pos) in
        stats.postings_scored <- stats.postings_scored + 1;
        belief ~n_docs:source.n_docs ~df:c.df ~tf ~dl:(source.doc_len d)
          ~avg_dl:source.avg_doc_len
      end
      else default_belief
    | DSum ns ->
      let k = List.length ns in
      if k = 0 then default_belief
      else List.fold_left (fun acc n -> acc +. score n d) 0.0 ns /. float_of_int k
    | DWsum ps ->
      let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 ps in
      if total <= 0.0 then default_belief
      else List.fold_left (fun acc (w, n) -> acc +. (w *. score n d)) 0.0 ps /. total
    | DAnd ns ->
      if ns = [] then default_belief
      else List.fold_left (fun acc n -> acc *. score n d) 1.0 ns
    | DOr ns ->
      if ns = [] then default_belief
      else 1.0 -. List.fold_left (fun acc n -> acc *. (1.0 -. score n d)) 1.0 ns
    | DMax ns ->
      if ns = [] then default_belief
      else List.fold_left (fun acc n -> Float.max acc (score n d)) 0.0 ns
    | DNot n -> 1.0 -. score n d
  in
  let advance d =
    List.iter
      (fun l ->
        match l with
        | DLeaf c when c.pos < Array.length c.docs && fst c.docs.(c.pos) = d ->
          c.pos <- c.pos + 1
        | _ -> ())
      !leaves
  in
  (* The belief a document with no query terms would get: not 0.4 in
     general (e.g. #or of defaults is 0.64, #and is 0.16).  Scoring an
     impossible document id hits every leaf's default path. *)
  let baseline = score tree (-1) in
  let results = ref [] in
  let rec loop () =
    match frontier () with
    | None -> ()
    | Some d ->
      let b = score tree d in
      advance d;
      if b > baseline +. 1e-12 then results := { doc = d; belief = b } :: !results;
      loop ()
  in
  loop ();
  (List.rev !results, stats)
