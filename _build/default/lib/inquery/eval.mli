(** Retrieval effectiveness: recall and precision.

    The paper holds effectiveness fixed ("the portion of the system that
    determines those factors is fixed across the two systems") and
    measures time instead — but the relevance files it feeds each run
    exist to compute these metrics, so the reproduction carries them
    too, exercised on synthetic judgments. *)

type judgments
(** The relevant document set for one query. *)

val judgments_of_list : int list -> judgments
val relevant_count : judgments -> int

val precision_at : int list -> judgments -> k:int -> float
(** [precision_at ranked rel ~k]: fraction of the top [k] ranked
    documents that are relevant.  Raises [Invalid_argument] if
    [k <= 0]. *)

val recall_at : int list -> judgments -> k:int -> float
(** Fraction of relevant documents found in the top [k]; 0 when there
    are no relevant documents. *)

val r_precision : int list -> judgments -> float
(** Precision at rank R = number of relevant documents. *)

val average_precision : int list -> judgments -> float
(** Mean of precision values at each relevant document's rank
    (uninterpolated AP); 0 when there are no relevant documents. *)

val interpolated_precision : int list -> judgments -> recall:float -> float
(** Max precision at any rank achieving at least the given recall —
    the 11-point interpolated metric of classic IR evaluation.
    Raises [Invalid_argument] if [recall] is outside [0, 1]. *)
