type t = (string, unit) Hashtbl.t

let of_list words =
  let t = Hashtbl.create (List.length words * 2) in
  List.iter (fun w -> Hashtbl.replace t (String.lowercase_ascii w) ()) words;
  t

let of_file_contents contents =
  let words =
    String.split_on_char '\n' contents
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then None else Some line)
  in
  of_list words

let default_words =
  [
    "a"; "about"; "above"; "across"; "after"; "afterwards"; "again"; "against"; "all"; "almost";
    "alone"; "along"; "already"; "also"; "although"; "always"; "am"; "among"; "amongst"; "an";
    "and"; "another"; "any"; "anyhow"; "anyone"; "anything"; "anywhere"; "are"; "around"; "as";
    "at"; "be"; "became"; "because"; "become"; "becomes"; "becoming"; "been"; "before";
    "beforehand"; "behind"; "being"; "below"; "beside"; "besides"; "between"; "beyond"; "both";
    "but"; "by"; "can"; "cannot"; "could"; "did"; "do"; "does"; "doing"; "done"; "down"; "during";
    "each"; "either"; "else"; "elsewhere"; "enough"; "etc"; "even"; "ever"; "every"; "everyone";
    "everything"; "everywhere"; "except"; "few"; "for"; "former"; "formerly"; "from"; "further";
    "had"; "has"; "have"; "having"; "he"; "hence"; "her"; "here"; "hereafter"; "hereby"; "herein";
    "hereupon"; "hers"; "herself"; "him"; "himself"; "his"; "how"; "however"; "i"; "ie"; "if";
    "in"; "indeed"; "instead"; "into"; "is"; "it"; "its"; "itself"; "just"; "last"; "latter";
    "latterly"; "least"; "less"; "like"; "made"; "many"; "may"; "me"; "meanwhile"; "might";
    "more"; "moreover"; "most"; "mostly"; "much"; "must"; "my"; "myself"; "namely"; "neither";
    "never"; "nevertheless"; "next"; "no"; "nobody"; "none"; "noone"; "nor"; "not"; "nothing";
    "now"; "nowhere"; "of"; "off"; "often"; "on"; "once"; "one"; "only"; "onto"; "or"; "other";
    "others"; "otherwise"; "our"; "ours"; "ourselves"; "out"; "over"; "own"; "per"; "perhaps";
    "rather"; "same"; "seem"; "seemed"; "seeming"; "seems"; "several"; "she"; "should"; "since";
    "so"; "some"; "somehow"; "someone"; "something"; "sometime"; "sometimes"; "somewhere";
    "still"; "such"; "than"; "that"; "the"; "their"; "theirs"; "them"; "themselves"; "then";
    "thence"; "there"; "thereafter"; "thereby"; "therefore"; "therein"; "thereupon"; "these";
    "they"; "this"; "those"; "though"; "through"; "throughout"; "thru"; "thus"; "to"; "together";
    "too"; "toward"; "towards"; "under"; "until"; "up"; "upon"; "us"; "very"; "via"; "was"; "we";
    "well"; "were"; "what"; "whatever"; "when"; "whence"; "whenever"; "where"; "whereafter";
    "whereas"; "whereby"; "wherein"; "whereupon"; "wherever"; "whether"; "which"; "while";
    "whither"; "who"; "whoever"; "whole"; "whom"; "whose"; "why"; "will"; "with"; "within";
    "without"; "would"; "yet"; "you"; "your"; "yours"; "yourself"; "yourselves";
  ]

let default = of_list default_words

let is_stopword t word = Hashtbl.mem t word
let size t = Hashtbl.length t
