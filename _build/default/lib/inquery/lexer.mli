(** Document and query tokenization.

    Tokens are maximal runs of ASCII letters and digits, lowercased.
    Position numbering is by token index (0-based), which is what the
    proximity/phrase operators consume. *)

type token = { term : string; position : int }

val tokens : string -> token list
(** All tokens of a text, in order. *)

val fold_tokens : string -> init:'a -> f:('a -> string -> int -> 'a) -> 'a
(** [fold_tokens text ~init ~f] folds [f acc term position] over the
    tokens without building a list — the indexer's hot path. *)

val terms : string -> string list
(** Just the token strings, in order. *)
