type entry = {
  term : string;
  id : int;
  mutable df : int;
  mutable cf : int;
  mutable locator : int;
}

type chain = Nil | Cons of entry * chain ref

type t = {
  mutable buckets : chain ref array;
  mutable by_id : entry option array;
  mutable count : int;
}

let create ?(initial_buckets = 1024) () =
  {
    buckets = Array.init (max 16 initial_buckets) (fun _ -> ref Nil);
    by_id = Array.make 1024 None;
    count = 0;
  }

(* FNV-1a: stable across runs, unlike [Hashtbl.hash] seeds. *)
let hash s =
  let h = ref 0x3f29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let bucket_count t = Array.length t.buckets

let rec chain_find chain term =
  match !chain with
  | Nil -> None
  | Cons (e, rest) -> if e.term = term then Some e else chain_find rest term

let find t term = chain_find t.buckets.(hash term mod Array.length t.buckets) term

let grow t =
  let old = t.buckets in
  let width = Array.length old * 2 in
  let buckets = Array.init width (fun _ -> ref Nil) in
  Array.iter
    (fun chain ->
      let rec go c =
        match !c with
        | Nil -> ()
        | Cons (e, rest) ->
          let b = buckets.(hash e.term mod width) in
          b := Cons (e, ref !b);
          go rest
      in
      go chain)
    old;
  t.buckets <- buckets

let intern t term =
  match find t term with
  | Some e -> e
  | None ->
    if t.count >= Array.length t.buckets * 4 then grow t;
    let e = { term; id = t.count; df = 0; cf = 0; locator = -1 } in
    let b = t.buckets.(hash term mod Array.length t.buckets) in
    b := Cons (e, ref !b);
    if t.count >= Array.length t.by_id then begin
      let by_id = Array.make (Array.length t.by_id * 2) None in
      Array.blit t.by_id 0 by_id 0 (Array.length t.by_id);
      t.by_id <- by_id
    end;
    t.by_id.(t.count) <- Some e;
    t.count <- t.count + 1;
    e

let find_by_id t id = if id < 0 || id >= t.count then None else t.by_id.(id)
let size t = t.count

let iter t f =
  for id = 0 to t.count - 1 do
    match t.by_id.(id) with Some e -> f e | None -> ()
  done

let serialize t =
  let buf = Buffer.create (t.count * 24) in
  Util.Bin.buf_u32 buf t.count;
  iter t (fun e ->
      Util.Bin.buf_string buf e.term;
      Util.Bin.buf_u32 buf e.df;
      Util.Bin.buf_u64 buf e.cf;
      Util.Bin.buf_u64 buf (e.locator + 1));
  Buffer.to_bytes buf

let deserialize b =
  try
    let count = Util.Bin.get_u32 b 0 in
    let t = create ~initial_buckets:(max 16 (count / 2)) () in
    let pos = ref 4 in
    for _ = 1 to count do
      let term, p = Util.Bin.get_string b !pos in
      let e = intern t term in
      e.df <- Util.Bin.get_u32 b p;
      e.cf <- Util.Bin.get_u64 b (p + 4);
      e.locator <- Util.Bin.get_u64 b (p + 12) - 1;
      pos := p + 20
    done;
    t
  with Invalid_argument _ -> failwith "Dictionary.deserialize: corrupt image"
