(** The open-chaining hash dictionary.

    INQUERY maps text strings to unique integer term ids with an
    open-chaining hash dictionary that also stores summary statistics
    per string and "resides entirely in main memory during query
    processing".  The integrated system additionally stores, per term,
    the locator of the term's inverted list record — the B-tree key is
    the term id itself, while the Mneme version keeps the object id
    here, exactly as in the paper.

    This is a from-scratch chained hash table (not [Hashtbl]) with
    explicit growth, plus a flat id -> entry index for O(1) reverse
    lookup, and a compact serialised form. *)

type t

type entry = {
  term : string;
  id : int;  (** dense ids, assigned in intern order starting at 0 *)
  mutable df : int;  (** document frequency *)
  mutable cf : int;  (** collection frequency (total occurrences) *)
  mutable locator : int;  (** inverted-list locator (e.g. Mneme oid); -1 = unset *)
}

val create : ?initial_buckets:int -> unit -> t

val intern : t -> string -> entry
(** Find or add; new entries get the next id and zeroed statistics. *)

val find : t -> string -> entry option
val find_by_id : t -> int -> entry option
val size : t -> int
val iter : t -> (entry -> unit) -> unit
(** In id order. *)

val bucket_count : t -> int
(** Current table width (for load-factor tests). *)

val serialize : t -> bytes
val deserialize : bytes -> t
(** Raises [Failure] on a corrupt image. *)
