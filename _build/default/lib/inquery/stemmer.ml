(* A direct transcription of Porter (1980).  The word being stemmed is
   held in [b.(0 .. k)]; measure and conditions follow the paper's
   definitions. *)

let is_vowel_letter c = c = 'a' || c = 'e' || c = 'i' || c = 'o' || c = 'u'

type state = { mutable b : Bytes.t; mutable k : int }

(* cons i: true if b.(i) is a consonant ('y' is a consonant when it
   follows a vowel position test per Porter's definition). *)
let rec cons s i =
  let c = Bytes.get s.b i in
  if is_vowel_letter c then false
  else if c = 'y' then if i = 0 then true else not (cons s (i - 1))
  else true

(* m: the measure of the stem b.(0..j). *)
let measure s j =
  let rec skip_initial_cons i = if i > j then i else if cons s i then skip_initial_cons (i + 1) else i in
  let rec count i m =
    if i > j then m
    else begin
      (* at a vowel run: consume vowels, then consonants = one VC *)
      let rec vowels i = if i > j then i else if cons s i then i else vowels (i + 1) in
      let rec conss i = if i > j then i else if cons s i then conss (i + 1) else i in
      let i = vowels i in
      if i > j then m
      else count (conss i) (m + 1)
    end
  in
  count (skip_initial_cons 0) 0

let vowel_in_stem s j =
  let rec go i = if i > j then false else if not (cons s i) then true else go (i + 1) in
  go 0

let double_cons s i = i >= 1 && Bytes.get s.b i = Bytes.get s.b (i - 1) && cons s i

(* cvc i: stem ends consonant-vowel-consonant where the final consonant
   is not w, x or y — the condition *o. *)
let cvc s i =
  if i < 2 || not (cons s i) || cons s (i - 1) || not (cons s (i - 2)) then false
  else
    let c = Bytes.get s.b i in
    c <> 'w' && c <> 'x' && c <> 'y'

let ends s suffix =
  let ls = String.length suffix in
  let off = s.k - ls + 1 in
  if off < 0 then None
  else if Bytes.sub_string s.b off ls = suffix then Some (off - 1) (* j = stem end *)
  else None

let set_to s j replacement =
  let lr = String.length replacement in
  Bytes.blit_string replacement 0 s.b (j + 1) lr;
  s.k <- j + lr

(* Replace suffix when m(stem) > threshold. *)
let replace_if_m s ~gt suffix replacement =
  match ends s suffix with
  | Some j when measure s j > gt ->
    set_to s j replacement;
    true
  | Some _ -> true (* suffix matched: stop trying alternatives *)
  | None -> false

let step_1a s =
  match ends s "sses" with
  | Some j -> set_to s j "ss"
  | None -> (
    match ends s "ies" with
    | Some j -> set_to s j "i"
    | None -> (
      match ends s "ss" with
      | Some _ -> ()
      | None -> ( match ends s "s" with Some j -> set_to s j "" | None -> ())))

let step_1b s =
  let tidy () =
    (* after removing "ed"/"ing" *)
    match (ends s "at", ends s "bl", ends s "iz") with
    | Some j, _, _ | _, Some j, _ | _, _, Some j -> set_to s j (Bytes.sub_string s.b (j + 1) 2 ^ "e")
    | None, None, None ->
      if double_cons s s.k then begin
        let c = Bytes.get s.b s.k in
        if c <> 'l' && c <> 's' && c <> 'z' then s.k <- s.k - 1
      end
      else if measure s s.k = 1 && cvc s s.k then begin
        s.k <- s.k + 1;
        Bytes.set s.b s.k 'e'
      end
  in
  match ends s "eed" with
  | Some j -> if measure s j > 0 then s.k <- s.k - 1
  | None -> (
    match ends s "ed" with
    | Some j when vowel_in_stem s j ->
      set_to s j "";
      tidy ()
    | Some _ | None -> (
      match ends s "ing" with
      | Some j when vowel_in_stem s j ->
        set_to s j "";
        tidy ()
      | Some _ | None -> ()))

let step_1c s =
  match ends s "y" with
  | Some j when vowel_in_stem s j -> Bytes.set s.b s.k 'i'
  | Some _ | None -> ()

let step_2 s =
  let pairs =
    [
      ("ational", "ate"); ("tional", "tion"); ("enci", "ence"); ("anci", "ance"); ("izer", "ize");
      ("abli", "able"); ("alli", "al"); ("entli", "ent"); ("eli", "e"); ("ousli", "ous");
      ("ization", "ize"); ("ation", "ate"); ("ator", "ate"); ("alism", "al"); ("iveness", "ive");
      ("fulness", "ful"); ("ousness", "ous"); ("aliti", "al"); ("iviti", "ive"); ("biliti", "ble");
    ]
  in
  ignore (List.exists (fun (suf, rep) -> replace_if_m s ~gt:0 suf rep) pairs)

let step_3 s =
  let pairs =
    [
      ("icate", "ic"); ("ative", ""); ("alize", "al"); ("iciti", "ic"); ("ical", "ic");
      ("ful", ""); ("ness", "");
    ]
  in
  ignore (List.exists (fun (suf, rep) -> replace_if_m s ~gt:0 suf rep) pairs)

let step_4 s =
  let drop_if_m1 suffix =
    match ends s suffix with
    | Some j when measure s j > 1 ->
      set_to s j "";
      true
    | Some _ -> true
    | None -> false
  in
  let suffixes =
    [ "al"; "ance"; "ence"; "er"; "ic"; "able"; "ible"; "ant"; "ement"; "ment"; "ent" ]
  in
  if not (List.exists drop_if_m1 suffixes) then begin
    (* "ion" drops when m > 1 and the stem ends in s or t *)
    (match ends s "ion" with
    | Some j when j >= 0 && (Bytes.get s.b j = 's' || Bytes.get s.b j = 't') && measure s j > 1 ->
      set_to s j ""
    | Some _ -> ()
    | None ->
      ignore (List.exists drop_if_m1 [ "ou"; "ism"; "ate"; "iti"; "ous"; "ive"; "ize" ]));
    ()
  end

let step_5a s =
  match ends s "e" with
  | Some j ->
    let m = measure s j in
    if m > 1 || (m = 1 && not (cvc s j)) then s.k <- s.k - 1
  | None -> ()

let step_5b s =
  if Bytes.get s.b s.k = 'l' && double_cons s s.k && measure s s.k > 1 then s.k <- s.k - 1

let stem word =
  let n = String.length word in
  if n <= 2 then word
  else begin
    (* +1 slack: step 1b may append an 'e'. *)
    let b = Bytes.make (n + 1) ' ' in
    Bytes.blit_string word 0 b 0 n;
    let s = { b; k = n - 1 } in
    step_1a s;
    step_1b s;
    step_1c s;
    step_2 s;
    step_3 s;
    step_4 s;
    step_5a s;
    step_5b s;
    Bytes.sub_string s.b 0 (s.k + 1)
  end
