type ranked = { doc : int; score : float }

let rank ?(above = Infnet.default_belief) beliefs =
  let candidates = ref [] in
  Array.iteri (fun doc score -> if score > above then candidates := { doc; score } :: !candidates) beliefs;
  List.sort
    (fun a b -> if a.score = b.score then compare a.doc b.doc else compare b.score a.score)
    !candidates

let top_k ?above beliefs ~k =
  if k < 0 then invalid_arg "Ranking.top_k: negative k";
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take k (rank ?above beliefs)
