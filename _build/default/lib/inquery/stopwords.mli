(** Stop word filtering.

    The paper's runs used "appropriate ... stop words files" — words too
    frequent or too weakly meaningful to index.  A standard English list
    is built in; custom lists can be loaded from the same one-word-per-
    line format INQUERY used. *)

type t

val default : t
(** The classic van Rijsbergen-derived English stop list (~320 words). *)

val of_list : string list -> t
(** Words are lowercased on the way in. *)

val of_file_contents : string -> t
(** Parse a stop words file: one word per line, [#] comments allowed. *)

val is_stopword : t -> string -> bool
(** The probe must already be lowercase (tokens from {!Lexer} are). *)

val size : t -> int
