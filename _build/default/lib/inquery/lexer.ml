type token = { term : string; position : int }

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let lower c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c

let fold_tokens text ~init ~f =
  let n = String.length text in
  let buf = Buffer.create 16 in
  let rec skip acc pos i =
    if i >= n then acc
    else if is_word_char text.[i] then word acc pos i
    else skip acc pos (i + 1)
  and word acc pos i =
    if i < n && is_word_char text.[i] then begin
      Buffer.add_char buf (lower text.[i]);
      word acc pos (i + 1)
    end
    else begin
      let term = Buffer.contents buf in
      Buffer.clear buf;
      skip (f acc term pos) (pos + 1) i
    end
  in
  skip init 0 0

let tokens text =
  fold_tokens text ~init:[] ~f:(fun acc term position -> { term; position } :: acc) |> List.rev

let terms text =
  fold_tokens text ~init:[] ~f:(fun acc term _ -> term :: acc) |> List.rev
