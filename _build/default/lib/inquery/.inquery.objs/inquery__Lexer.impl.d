lib/inquery/lexer.ml: Buffer Char List String
