lib/inquery/sigfile.ml: Array Bytes Char Fun List Seq String Util Vfs
