lib/inquery/dictionary.ml: Array Buffer Char String Util
