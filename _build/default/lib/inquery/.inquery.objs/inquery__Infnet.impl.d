lib/inquery/infnet.ml: Array Dictionary Float Fun Hashtbl List Option Postings Query Stemmer Stopwords
