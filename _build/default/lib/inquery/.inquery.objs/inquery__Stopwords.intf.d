lib/inquery/stopwords.mli:
