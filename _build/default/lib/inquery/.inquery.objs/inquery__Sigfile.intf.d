lib/inquery/sigfile.mli: Seq Vfs
