lib/inquery/lexer.mli:
