lib/inquery/eval.mli:
