lib/inquery/ranking.mli:
