lib/inquery/eval.ml: Hashtbl List
