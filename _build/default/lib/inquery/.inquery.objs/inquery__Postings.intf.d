lib/inquery/postings.mli:
