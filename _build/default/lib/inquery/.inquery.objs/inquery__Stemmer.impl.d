lib/inquery/stemmer.ml: Bytes List String
