lib/inquery/query.ml: Float Hashtbl List Printf String
