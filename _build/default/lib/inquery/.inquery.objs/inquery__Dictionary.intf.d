lib/inquery/dictionary.mli:
