lib/inquery/indexer.ml: Array Buffer Bytes Dictionary Lexer List Seq Stemmer Stopwords String Util
