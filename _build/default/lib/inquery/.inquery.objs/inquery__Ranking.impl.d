lib/inquery/ranking.ml: Array Infnet List
