lib/inquery/stopwords.ml: Hashtbl List String
