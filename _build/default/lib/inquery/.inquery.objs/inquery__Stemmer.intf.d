lib/inquery/stemmer.mli:
