lib/inquery/query.mli:
