lib/inquery/postings.ml: Buffer List Util
