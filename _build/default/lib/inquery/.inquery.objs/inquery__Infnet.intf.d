lib/inquery/infnet.mli: Dictionary Query Stopwords
