lib/inquery/indexer.mli: Dictionary Seq Stopwords
