type doc_postings = { doc : int; positions : int list }

let encode entries =
  let buf = Buffer.create 64 in
  let df = List.length entries in
  let cf = List.fold_left (fun acc (_, ps) -> acc + List.length ps) 0 entries in
  Util.Varint.encode buf df;
  Util.Varint.encode buf cf;
  let last_doc = ref (-1) in
  List.iter
    (fun (doc, positions) ->
      if doc <= !last_doc then invalid_arg "Postings.encode: doc ids must be strictly ascending";
      if positions = [] then invalid_arg "Postings.encode: empty position list";
      let gap = if !last_doc < 0 then doc else doc - !last_doc in
      last_doc := doc;
      Util.Varint.encode buf gap;
      Util.Varint.encode buf (List.length positions);
      let last_pos = ref (-1) in
      List.iter
        (fun p ->
          if p <= !last_pos then
            invalid_arg "Postings.encode: positions must be strictly ascending";
          let pgap = if !last_pos < 0 then p else p - !last_pos in
          last_pos := p;
          Util.Varint.encode buf pgap)
        positions)
    entries;
  Buffer.to_bytes buf

let stats b =
  let df, pos = Util.Varint.decode b ~pos:0 in
  let cf, _ = Util.Varint.decode b ~pos in
  (df, cf)

let doc_count b = fst (stats b)

let fold_docs b ~init ~f =
  let df, pos = Util.Varint.decode b ~pos:0 in
  let _cf, pos = Util.Varint.decode b ~pos in
  let rec go k pos doc acc =
    if k = 0 then acc
    else begin
      let gap, pos = Util.Varint.decode b ~pos in
      let doc = if doc < 0 then gap else doc + gap in
      let tf, pos = Util.Varint.decode b ~pos in
      (* Skip the tf position gaps. *)
      let rec skip n pos = if n = 0 then pos else skip (n - 1) (snd (Util.Varint.decode b ~pos)) in
      let pos = skip tf pos in
      go (k - 1) pos doc (f acc ~doc ~tf)
    end
  in
  go df pos (-1) init

let fold_positions b ~init ~f =
  let df, pos = Util.Varint.decode b ~pos:0 in
  let _cf, pos = Util.Varint.decode b ~pos in
  let rec go k pos doc acc =
    if k = 0 then acc
    else begin
      let gap, pos = Util.Varint.decode b ~pos in
      let doc = if doc < 0 then gap else doc + gap in
      let tf, pos = Util.Varint.decode b ~pos in
      let rec read n pos last acc_ps =
        if n = 0 then (List.rev acc_ps, pos)
        else begin
          let pgap, pos = Util.Varint.decode b ~pos in
          let p = if last < 0 then pgap else last + pgap in
          read (n - 1) pos p (p :: acc_ps)
        end
      in
      let positions, pos = read tf pos (-1) [] in
      go (k - 1) pos doc (f acc { doc; positions })
    end
  in
  go df pos (-1) init

let decode b = List.rev (fold_positions b ~init:[] ~f:(fun acc dp -> dp :: acc))

let merge a b =
  let pa = decode a and pb = decode b in
  let rec zip xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs', y :: ys' ->
      if x.doc < y.doc then x :: zip xs' ys
      else if y.doc < x.doc then y :: zip xs ys'
      else invalid_arg "Postings.merge: document sets overlap"
  in
  encode (List.map (fun dp -> (dp.doc, dp.positions)) (zip pa pb))

let remove_docs b p =
  let remaining = List.filter (fun dp -> not (p dp.doc)) (decode b) in
  if remaining = [] then None
  else Some (encode (List.map (fun dp -> (dp.doc, dp.positions)) remaining))
