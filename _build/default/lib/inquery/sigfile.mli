(** Signature files — the other text access method of the era.

    The paper's related work (via Faloutsos' survey): "The two
    techniques that seem to predominate are signature files and inverted
    files, each of which implies a different query processing
    algorithm."  This module implements superimposed-coding signature
    files so the benchmark harness can put numbers on the comparison the
    paper declined to make.

    Every document gets a [width]-bit signature; each of its terms sets
    [k] hash-selected bits.  A conjunctive query's signature is the OR
    of its terms' signatures; any document whose signature covers it is
    a {e candidate} — a superset of the true result, since superimposed
    bits collide (false positives, or "false drops", which a real system
    must filter by checking the documents themselves).

    Two physical organisations, per the classic literature:
    - {e sequential}: signatures stored document-contiguous; a query
      scans the whole file;
    - {e bit-sliced}: the signature matrix is stored transposed, one
      document-bitmap per signature bit; a query reads only the slices
      of the bits it probes — far less I/O, same candidates. *)

type organisation = Sequential | Bit_sliced

type t

val build :
  Vfs.t ->
  file:string ->
  width:int ->
  k:int ->
  ?organisation:organisation ->
  n_docs:int ->
  (int * string array) Seq.t ->
  t
(** [build vfs ~file ~width ~k ~n_docs docs] signs every document
    ([width] must be a positive multiple of 8; [0 < k <= width];
    document ids must be in [0, n_docs)).  Raises [Invalid_argument] on
    parameter violations. *)

val open_existing : Vfs.t -> file:string -> t
(** Raises [Failure] on a missing or corrupt file. *)

val width : t -> int
val k : t -> int
val organisation : t -> organisation
val n_docs : t -> int
val file_size : t -> int

val candidates : t -> string list -> int list
(** Documents whose signatures cover every query term's bits, ascending.
    A superset of the true conjunctive result; an empty term list yields
    every document.  All I/O goes through the {!Vfs} counters, so the
    harness can compare bytes read against the inverted file. *)

val term_bits : t -> string -> int list
(** The bit positions a term sets (deterministic hash), for tests. *)
