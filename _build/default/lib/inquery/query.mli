(** INQUERY's structured query language.

    Queries are operator trees in the [#op( ... )] syntax of the
    original system:

    {v
      information #phrase( information retrieval )
      #wsum( 2.0 retrieval 1.0 #or( index inverted ) )
      #and( legal #not( criminal ) )
      #od3( persistent object store )  #uw10( buffer cache )  #syn( court courts )
    v}

    A bare sequence of items at top level is an implicit [#sum].
    Operators: [#sum], [#wsum], [#and], [#or], [#not], [#max], and the
    position-based family — [#phrase] (exact adjacency), [#odN]
    (ordered within a window of N), [#uwN] (unordered within a window
    of N), [#syn] (synonym class: members share one inverted list) —
    which take bare terms only. *)

type t =
  | Term of string
  | Phrase of string list
  | Od of int * string list  (** ordered window: each next term within N positions *)
  | Uw of int * string list  (** unordered window of width N *)
  | Syn of string list  (** synonym class: union of the members' postings *)
  | Sum of t list
  | Wsum of (float * t) list
  | And of t list
  | Or of t list
  | Not of t
  | Max of t list

val parse : string -> (t, string) result
(** Parse the concrete syntax; [Error msg] pinpoints the problem. *)

val parse_exn : string -> t
(** Raises [Invalid_argument] on parse errors. *)

val terms : t -> string list
(** Every term mentioned, in first-appearance order, without duplicates
    — the query-tree scan used by the paper's reservation optimisation. *)

val node_count : t -> int
(** Tree size, for engine-CPU accounting. *)

val to_string : t -> string
(** Re-print in concrete syntax (canonical spacing). *)
