(** Inverted file index construction.

    Documents are fed in ascending document-id order; per-term postings
    are accumulated in already-compressed form, so peak memory is close
    to the final index size.  (Batch indexers of the paper's era
    materialised (term, doc) pairs and sorted them — "indexing a large
    collection ... is dominated by a sorting problem"; streaming in
    document order performs that sort implicitly, since postings arrive
    pre-sorted by document within each term.)

    The indexer owns the {!Dictionary} and maintains per-term df/cf
    statistics, per-document lengths, and collection totals.  The
    finished index is emitted as a sequence of (term id, record bytes)
    pairs in ascending term id, ready for {!Btree.bulk_load} or Mneme
    allocation. *)

type t

val create : ?stopwords:Stopwords.t -> ?stem:bool -> unit -> t
(** [stem] defaults to [false] (the synthetic collections pre-normalise
    their vocabulary); pass [~stem:true] for raw English text. *)

val add_document : t -> doc_id:int -> string -> unit
(** Tokenize, filter stop words, optionally stem, and index.  Document
    ids must be strictly increasing across calls; raises
    [Invalid_argument] otherwise.  Collection size grows by the text
    length. *)

val add_document_terms : t -> doc_id:int -> ?bytes:int -> string array -> unit
(** Index a pre-tokenized document: element [i] is the term at position
    [i].  No stop word or stemming filters are applied.  [bytes]
    (default: sum of term lengths + separators) is the raw-text size
    attributed to the document for collection statistics. *)

val dictionary : t -> Dictionary.t
val document_count : t -> int
val term_count : t -> int
val posting_count : t -> int
(** Total (term, doc) postings across the index. *)

val occurrence_count : t -> int
(** Total term occurrences (sum of cf). *)

val collection_bytes : t -> int
val doc_length : t -> int -> int
(** Indexed term count of a document; 0 for unknown ids. *)

val avg_doc_length : t -> float

val to_records : t -> (int * bytes) Seq.t
(** The finished inverted file, ascending by term id.  The sequence can
    be consumed once or many times; records are assembled on demand. *)

val record_bytes_total : t -> int
(** Sum of all record sizes (the "raw inverted data" volume). *)
