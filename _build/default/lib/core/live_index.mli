(** Dynamic inverted-file maintenance — the extension the paper leaves
    as future work.

    "In the INQUERY system ... document collections are currently viewed
    as archival and modification is considered a rare event.  Therefore,
    addition or deletion of a single document ... is not directly
    supported and requires the entire document collection to be
    re-indexed."

    A live index supports exactly that: incremental document addition
    and deletion over either storage backend, plus search, with the
    collection statistics (document count, lengths, per-term df/cf) kept
    consistent.  The costs the paper worries about become observable:

    - {b addition} obtains the inverted list of every term in the new
      document and re-stores it with the entry merged in.  Under the
      B-tree the old extent is freed and may be recycled; under Mneme a
      grown object relocates, stranding its old space
      ({!Mneme.Store.wasted_bytes}).  Objects that outgrow their size
      class migrate pools (small → medium → large), updating the
      dictionary locator.
    - {b deletion} must visit {e every} inverted list, since there is no
      forward index — the paper's "holes in the inverted lists", here
      actually punched and measured. *)

type t

val wrap_btree :
  ?stopwords:Inquery.Stopwords.t ->
  ?stem:bool ->
  Vfs.t ->
  tree:Btree.t ->
  dict:Inquery.Dictionary.t ->
  doc_lengths:(int * int) list ->
  t
(** Adopt an existing B-tree index.  [doc_lengths] carries the indexed
    length of each existing document. *)

val wrap_mneme :
  ?stopwords:Inquery.Stopwords.t ->
  ?stem:bool ->
  ?thresholds:Partition.thresholds ->
  Vfs.t ->
  store:Mneme.Store.t ->
  dict:Inquery.Dictionary.t ->
  doc_lengths:(int * int) list ->
  t
(** Adopt a built Mneme store.  Pools "small", "medium" and "large"
    must exist and have buffers attached.  Raises [Not_found] if a pool
    is missing. *)

val create_btree :
  ?stopwords:Inquery.Stopwords.t -> ?stem:bool -> Vfs.t -> file:string -> unit -> t
(** An empty live index on a fresh B-tree file. *)

val create_mneme :
  ?stopwords:Inquery.Stopwords.t ->
  ?stem:bool ->
  ?buffers:Buffer_sizing.t ->
  Vfs.t ->
  file:string ->
  unit ->
  t
(** An empty live index on a fresh Mneme store with the three standard
    pools ([buffers] defaults to 64 KB per pool). *)

val backend_name : t -> string
(** "btree" or "mneme". *)

val add_document : t -> ?doc_id:int -> string -> int
(** Index one document and return its id (fresh ids are assigned past
    the largest seen).  Raises [Invalid_argument] if an explicit id is
    not beyond every existing id. *)

val delete_document : t -> int -> bool
(** Remove a document from every inverted list it appears in; returns
    whether it existed. *)

val document_count : t -> int
val contains_document : t -> int -> bool
val avg_doc_length : t -> float

val term_record : t -> string -> bytes option
(** The current inverted record for a (normalised) term. *)

val search : ?top_k:int -> t -> string -> Inquery.Ranking.ranked list
(** Parse and evaluate a query against the live state.
    Raises [Invalid_argument] on syntax errors. *)

val flush : t -> unit
(** Persist backend metadata (B-tree header / Mneme finalize). *)

val compact : t -> file:string -> unit
(** Mneme backend only: rewrite the store into [file], reclaiming every
    byte stranded by updates and deletions, and switch the live index
    to the compacted store (object ids — and therefore the dictionary
    locators — are preserved).  Raises [Invalid_argument] on a B-tree
    backend. *)

type space = { file_bytes : int; reclaimable_bytes : int }

val space : t -> space
(** File size and the backend's recyclable/stranded byte count — the
    update micro-study's metric. *)
