(** One entry point per table and figure of the paper's evaluation.

    A {!ctx} lazily prepares collections and caches timed runs, so the
    tables that share runs (3, 4, 5, 6) measure each (collection, query
    set, version) combination exactly once.  [scale] multiplies the
    preset document counts — 1.0 reproduces the calibrated defaults,
    smaller values give smoke-test suites. *)

type ctx

val create_ctx : ?progress:(string -> unit) -> ?scale:float -> unit -> ctx
(** [progress] (default: silent) receives phase messages during the
    expensive preparation steps. *)

val scale : ctx -> float

val prepared : ctx -> string -> Experiment.prepared
(** The built collection by preset name, preparing it on first use.
    Raises [Invalid_argument] for unknown names. *)

val queries : ctx -> string -> string -> string list
(** [queries ctx collection set] — the generated query strings. *)

val run : ctx -> string -> string -> Experiment.version -> Experiment.run
(** [run ctx collection set version] — cached timed run. *)

val collections_with_sets : ctx -> (string * string list) list
(** [(collection, query set names)] in the paper's order. *)

val table1 : ctx -> Util.Tables.t
(** Document collection statistics. *)

val table2 : ctx -> Util.Tables.t
(** Mneme buffer sizes per collection. *)

val table3 : ctx -> Util.Tables.t
(** Wall-clock times, three versions, improvement %. *)

val table4 : ctx -> Util.Tables.t
(** System CPU + I/O times, three versions, improvement %. *)

val table5 : ctx -> Util.Tables.t
(** I/O statistics (I, A, B) for every version. *)

val table6 : ctx -> Util.Tables.t
(** Buffer hit rates per pool for the caching Mneme version. *)

val fig1 : ctx -> Util.Tables.t
(** Cumulative inverted-list size distribution (Legal). *)

val fig2 : ctx -> Util.Tables.t
(** Frequency of use per record-size bucket (Legal query set 2). *)

val fig3 : ?sizes:int list -> ctx -> Util.Tables.t
(** Large-object buffer hit rate vs buffer size (TIPSTER query set 1).
    [sizes] defaults to a sweep from one segment to ~6x the default. *)

val all : ctx -> (string * Util.Tables.t) list
(** Every table and figure, labelled, in presentation order. *)
