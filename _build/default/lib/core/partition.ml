type size_class = Small | Medium | Large

type thresholds = { small_max : int; large_min : int }

let default = { small_max = 12; large_min = 4097 }

let classify ?(thresholds = default) size =
  if size <= thresholds.small_max then Small
  else if size >= thresholds.large_min then Large
  else Medium

let class_name = function Small -> "small" | Medium -> "medium" | Large -> "large"

let census ?thresholds sizes =
  Array.fold_left
    (fun (s, m, l) size ->
      match classify ?thresholds size with
      | Small -> (s + 1, m, l)
      | Medium -> (s, m + 1, l)
      | Large -> (s, m, l + 1))
    (0, 0, 0) sizes
