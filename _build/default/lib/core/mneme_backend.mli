(** The integrated configuration: one Mneme object per inverted list.

    [build] allocates every record into the small/medium/large pool
    chosen by {!Partition} and stores each object's Mneme id in the
    term's hash-dictionary entry (the [locator] field) — exactly the
    paper's integration.  [open_session] re-opens the finalized store,
    creates one buffer per pool with the requested capacities (0 = the
    no-cache configuration), and exposes the {!Index_store} interface,
    including query-tree reservation. *)

val default_policies : Mneme.Policy.t * Mneme.Policy.t * Mneme.Policy.t
(** The paper's (small, medium, large) pool configuration. *)

val build :
  ?thresholds:Partition.thresholds ->
  ?policies:Mneme.Policy.t * Mneme.Policy.t * Mneme.Policy.t ->
  Vfs.t ->
  file:string ->
  dict:Inquery.Dictionary.t ->
  (int * bytes) Seq.t ->
  Mneme.Store.t
(** Build and finalize the store.  Every record's term id must resolve
    in [dict] (the indexer guarantees this); raises [Failure] otherwise.
    [policies] substitutes custom pool policies (they must keep the
    names small/medium/large; raises [Invalid_argument] otherwise) —
    the segment-size ablations use this. *)

val open_session :
  ?policy:Mneme.Buffer_pool.policy ->
  Vfs.t ->
  file:string ->
  buffers:Buffer_sizing.t ->
  Index_store.t
(** [policy] selects the replacement algorithm for all three buffers
    (default LRU, as in the paper).  Raises {!Mneme.Store.Corrupt} on a
    bad file. *)
