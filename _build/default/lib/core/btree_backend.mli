(** The original configuration: inverted file index as a keyed file,
    term ids as keys, B-tree index.

    [build] bulk-loads the records emitted by an {!Inquery.Indexer};
    [open_session] re-opens the file the way each timed run did (no
    state survives from the build), yielding an {!Index_store} whose
    every lookup pays the paper's characteristic "more than one disk
    access". *)

val build : Vfs.t -> file:string -> (int * bytes) Seq.t -> Btree.t
(** Create and bulk-load; returns the tree (callers usually only need
    the side effect).  Raises like {!Btree.create}/{!Btree.bulk_load}. *)

val open_session : ?cached_levels:int -> Vfs.t -> file:string -> Index_store.t
(** [cached_levels] as in {!Btree.open_existing} (default 1, the
    paper's root-only baseline).  Raises [Failure] if the file is
    missing or corrupt. *)
