type backend =
  | Btree_backend of Btree.t
  | Mneme_backend of {
      store : Mneme.Store.t;
      small : Mneme.Store.pool;
      medium : Mneme.Store.pool;
      large : Mneme.Store.pool;
      thresholds : Partition.thresholds;
    }

type t = {
  vfs : Vfs.t;
  mutable backend : backend;
  dict : Inquery.Dictionary.t;
  stopwords : Inquery.Stopwords.t option;
  stem : bool;
  doc_lens : (int, int) Hashtbl.t;
  mutable total_len : int;
  mutable next_doc_id : int;
}

let make ?stopwords ?(stem = false) vfs backend dict doc_lengths =
  let doc_lens = Hashtbl.create (max 64 (List.length doc_lengths)) in
  let total_len = ref 0 in
  let next = ref 0 in
  List.iter
    (fun (doc, len) ->
      Hashtbl.replace doc_lens doc len;
      total_len := !total_len + len;
      if doc >= !next then next := doc + 1)
    doc_lengths;
  {
    vfs;
    backend;
    dict;
    stopwords;
    stem;
    doc_lens;
    total_len = !total_len;
    next_doc_id = !next;
  }

let wrap_btree ?stopwords ?stem vfs ~tree ~dict ~doc_lengths =
  make ?stopwords ?stem vfs (Btree_backend tree) dict doc_lengths

let mneme_of_store ?(thresholds = Partition.default) store =
  Mneme_backend
    {
      store;
      small = Mneme.Store.pool store "small";
      medium = Mneme.Store.pool store "medium";
      large = Mneme.Store.pool store "large";
      thresholds;
    }

let wrap_mneme ?stopwords ?stem ?thresholds vfs ~store ~dict ~doc_lengths =
  make ?stopwords ?stem vfs (mneme_of_store ?thresholds store) dict doc_lengths

let create_btree ?stopwords ?stem vfs ~file () =
  let tree = Btree.create vfs file () in
  make ?stopwords ?stem vfs (Btree_backend tree) (Inquery.Dictionary.create ()) []

let default_live_buffers = { Buffer_sizing.small = 65536; medium = 65536; large = 65536 }

let create_mneme ?stopwords ?stem ?(buffers = default_live_buffers) vfs ~file () =
  let store = Mneme.Store.create vfs file in
  List.iter
    (fun (policy, capacity) ->
      let pool = Mneme.Store.add_pool store policy in
      Mneme.Store.attach_buffer pool
        (Mneme.Buffer_pool.create ~name:policy.Mneme.Policy.name ~capacity ()))
    [
      (Mneme.Policy.small, buffers.Buffer_sizing.small);
      (Mneme.Policy.medium, buffers.Buffer_sizing.medium);
      (Mneme.Policy.large, buffers.Buffer_sizing.large);
    ];
  make ?stopwords ?stem vfs (mneme_of_store store) (Inquery.Dictionary.create ()) []

let backend_name t = match t.backend with Btree_backend _ -> "btree" | Mneme_backend _ -> "mneme"

(* ------------------------------------------------------------------ *)
(* Record access                                                       *)

let fetch_record t entry =
  match t.backend with
  | Btree_backend tree -> Btree.lookup tree entry.Inquery.Dictionary.id
  | Mneme_backend { store; _ } ->
    let locator = entry.Inquery.Dictionary.locator in
    if locator < 0 then None else Mneme.Store.get_opt store locator

let pool_for m size =
  match Partition.classify ~thresholds:m size with
  | Partition.Small -> `Small
  | Partition.Medium -> `Medium
  | Partition.Large -> `Large

(* Store [record] as the inverted list of [entry], replacing any
   previous version.  Under Mneme, records that change size class move
   between pools: the old object is deleted and a new one allocated, and
   the locator in the hash dictionary is updated — the integration
   pattern of the paper, now dynamic. *)
let store_record t entry record =
  match t.backend with
  | Btree_backend tree -> Btree.insert tree entry.Inquery.Dictionary.id record
  | Mneme_backend { store; small; medium; large; thresholds } ->
    let pool_of cls =
      match cls with `Small -> small | `Medium -> medium | `Large -> large
    in
    let new_class = pool_for thresholds (Bytes.length record) in
    let locator = entry.Inquery.Dictionary.locator in
    if locator < 0 then
      entry.Inquery.Dictionary.locator <- Mneme.Store.allocate (pool_of new_class) record
    else begin
      let old_class =
        match Mneme.Store.pool_of_oid store locator with
        | Some p -> (
          match Mneme.Store.pool_name p with
          | "small" -> `Small
          | "medium" -> `Medium
          | _ -> `Large)
        | None -> new_class
      in
      if old_class = new_class then Mneme.Store.modify store locator record
      else begin
        Mneme.Store.delete store locator;
        entry.Inquery.Dictionary.locator <- Mneme.Store.allocate (pool_of new_class) record
      end
    end

let drop_record t entry =
  (match t.backend with
  | Btree_backend tree -> ignore (Btree.delete tree entry.Inquery.Dictionary.id)
  | Mneme_backend { store; _ } ->
    let locator = entry.Inquery.Dictionary.locator in
    if locator >= 0 then Mneme.Store.delete store locator);
  entry.Inquery.Dictionary.locator <- -1

(* ------------------------------------------------------------------ *)
(* Addition                                                            *)

let normalise t term =
  let stopped =
    match t.stopwords with Some sw -> Inquery.Stopwords.is_stopword sw term | None -> false
  in
  if stopped then None else Some (if t.stem then Inquery.Stemmer.stem term else term)

let add_document t ?doc_id text =
  let doc =
    match doc_id with
    | None -> t.next_doc_id
    | Some id ->
      if id < t.next_doc_id then
        invalid_arg "Live_index.add_document: id must exceed all existing ids";
      id
  in
  t.next_doc_id <- doc + 1;
  (* Group positions per term, in ascending order. *)
  let positions = Hashtbl.create 32 in
  let order = ref [] in
  let indexed =
    Inquery.Lexer.fold_tokens text ~init:0 ~f:(fun n term position ->
        match normalise t term with
        | None -> n
        | Some term ->
          (match Hashtbl.find_opt positions term with
          | Some ps -> Hashtbl.replace positions term (position :: ps)
          | None ->
            Hashtbl.replace positions term [ position ];
            order := term :: !order);
          n + 1)
  in
  List.iter
    (fun term ->
      let entry = Inquery.Dictionary.intern t.dict term in
      let ps = List.rev (Hashtbl.find positions term) in
      let addition = Inquery.Postings.encode [ (doc, ps) ] in
      let record =
        match fetch_record t entry with
        | None -> addition
        | Some existing -> Inquery.Postings.merge existing addition
      in
      store_record t entry record;
      entry.Inquery.Dictionary.df <- entry.Inquery.Dictionary.df + 1;
      entry.Inquery.Dictionary.cf <- entry.Inquery.Dictionary.cf + List.length ps)
    (List.rev !order);
  Hashtbl.replace t.doc_lens doc indexed;
  t.total_len <- t.total_len + indexed;
  doc

(* ------------------------------------------------------------------ *)
(* Deletion                                                            *)

let delete_document t doc =
  match Hashtbl.find_opt t.doc_lens doc with
  | None -> false
  | Some len ->
    (* No forward index: every inverted list must be examined — the
       cost structure the paper describes for deletion. *)
    Inquery.Dictionary.iter t.dict (fun entry ->
        match fetch_record t entry with
        | None -> ()
        | Some record ->
          let tf = ref 0 in
          Inquery.Postings.fold_docs record ~init:() ~f:(fun () ~doc:d ~tf:f ->
              if d = doc then tf := f);
          if !tf > 0 then begin
            (match Inquery.Postings.remove_docs record (fun d -> d = doc) with
            | Some record' -> store_record t entry record'
            | None -> drop_record t entry);
            entry.Inquery.Dictionary.df <- entry.Inquery.Dictionary.df - 1;
            entry.Inquery.Dictionary.cf <- entry.Inquery.Dictionary.cf - !tf
          end);
    Hashtbl.remove t.doc_lens doc;
    t.total_len <- t.total_len - len;
    true

(* ------------------------------------------------------------------ *)
(* Search and statistics                                               *)

let document_count t = Hashtbl.length t.doc_lens
let contains_document t doc = Hashtbl.mem t.doc_lens doc

let avg_doc_length t =
  let n = document_count t in
  if n = 0 then 0.0 else float_of_int t.total_len /. float_of_int n

let term_record t term =
  match normalise t term with
  | None -> None
  | Some term -> (
    match Inquery.Dictionary.find t.dict term with
    | None -> None
    | Some entry -> fetch_record t entry)

let search ?(top_k = 10) t query =
  let source =
    {
      Inquery.Infnet.fetch = (fun entry -> fetch_record t entry);
      n_docs = max 1 (document_count t);
      max_doc_id = max 0 (t.next_doc_id - 1);
      avg_doc_len = avg_doc_length t;
      doc_len = (fun d -> match Hashtbl.find_opt t.doc_lens d with Some l -> l | None -> 0);
    }
  in
  let beliefs, _ =
    Inquery.Infnet.eval source t.dict ?stopwords:t.stopwords ~stem:t.stem
      (Inquery.Query.parse_exn query)
  in
  (* Deleted documents keep their slots; mask them out. *)
  Array.iteri
    (fun d b ->
      if b > Inquery.Infnet.default_belief && not (Hashtbl.mem t.doc_lens d) then
        beliefs.(d) <- Inquery.Infnet.default_belief)
    beliefs;
  Inquery.Ranking.top_k beliefs ~k:top_k

let flush t =
  match t.backend with
  | Btree_backend tree -> Btree.flush tree
  | Mneme_backend { store; _ } -> Mneme.Store.finalize store

let compact t ~file =
  match t.backend with
  | Btree_backend _ -> invalid_arg "Live_index.compact: only the Mneme backend compacts"
  | Mneme_backend { store; thresholds; _ } ->
    Mneme.Store.finalize store;
    let dst = Mneme.Store.compact store ~file in
    (* Carry the buffer configuration over to the new store's pools. *)
    List.iter
      (fun name ->
        let capacity =
          match Mneme.Store.buffer (Mneme.Store.pool store name) with
          | Some b -> Mneme.Buffer_pool.capacity b
          | None -> 65536
        in
        Mneme.Store.attach_buffer (Mneme.Store.pool dst name)
          (Mneme.Buffer_pool.create ~name ~capacity ()))
      [ "small"; "medium"; "large" ];
    t.backend <- mneme_of_store ~thresholds dst

type space = { file_bytes : int; reclaimable_bytes : int }

let space t =
  match t.backend with
  | Btree_backend tree ->
    { file_bytes = Btree.file_size tree; reclaimable_bytes = Btree.free_bytes tree }
  | Mneme_backend { store; _ } ->
    { file_bytes = Mneme.Store.file_size store; reclaimable_bytes = Mneme.Store.wasted_bytes store }
