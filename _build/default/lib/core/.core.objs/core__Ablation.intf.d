lib/core/ablation.mli: Util
