lib/core/live_index.ml: Array Btree Buffer_sizing Bytes Hashtbl Inquery List Mneme Partition Vfs
