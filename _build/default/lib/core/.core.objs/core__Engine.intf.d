lib/core/engine.mli: Index_store Inquery Vfs
