lib/core/paper.mli: Experiment Util
