lib/core/experiment.mli: Buffer_sizing Collections Engine Inquery Mneme Vfs
