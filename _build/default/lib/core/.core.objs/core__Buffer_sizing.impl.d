lib/core/buffer_sizing.ml:
