lib/core/mneme_backend.ml: Buffer_sizing Bytes Index_store Inquery List Mneme Partition Printf Seq
