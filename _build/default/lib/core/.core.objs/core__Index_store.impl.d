lib/core/index_store.ml: Inquery Mneme
