lib/core/btree_backend.mli: Btree Index_store Seq Vfs
