lib/core/engine.ml: Index_store Inquery List Vfs
