lib/core/paper.ml: Buffer_sizing Collections Experiment Hashtbl Inquery List Mneme Printf Report Util
