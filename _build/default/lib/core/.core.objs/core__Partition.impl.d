lib/core/partition.ml: Array
