lib/core/experiment.ml: Array Btree Btree_backend Buffer_sizing Bytes Catalog Collections Engine Index_store Inquery List Mneme Mneme_backend Printf Seq Vfs
