lib/core/mneme_backend.mli: Buffer_sizing Index_store Inquery Mneme Partition Seq Vfs
