lib/core/catalog.ml: Array Buffer Bytes Inquery Util Vfs
