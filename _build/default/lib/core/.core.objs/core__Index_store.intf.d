lib/core/index_store.mli: Inquery Mneme
