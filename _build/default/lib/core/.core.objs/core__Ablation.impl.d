lib/core/ablation.ml: Array Btree Buffer_sizing Bytes Collections Engine Experiment Hashtbl Index_store Inquery List Live_index Mneme Mneme_backend Partition Printf Seq Util Vfs
