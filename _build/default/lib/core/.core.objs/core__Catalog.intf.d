lib/core/catalog.mli: Inquery Vfs
