lib/core/live_index.mli: Btree Buffer_sizing Inquery Mneme Partition Vfs
