lib/core/report.ml: Array Experiment Float Hashtbl Inquery List Partition Util
