lib/core/buffer_sizing.mli:
