lib/core/btree_backend.ml: Btree Index_store Inquery
