lib/core/partition.mli:
