(** Ablation studies for the design choices the paper makes (and two it
    proposes as future work).

    Each table isolates one decision on a moderate synthetic collection:

    - {!policy_table} — buffer replacement policy (LRU / FIFO / Clock)
      crossed with the query-tree reservation optimisation, under a
      deliberately tight large-object buffer;
    - {!medium_pseg_table} — the medium pool's physical-segment size
      ("based on the disk I/O block size and a desire to keep the
      segments relatively small");
    - {!threshold_table} — the small/large partition thresholds (12
      bytes and 4 KB in the paper);
    - {!update_table} — the dynamic-update micro-study: incremental
      document addition/deletion cost and stranded space on both
      backends ({!Live_index});
    - {!daat_table} — term-at-a-time vs document-at-a-time evaluation.

    Every row rebuilds its index variant from the same document
    collection, so rows differ only in the ablated parameter. *)

type ctx

val create : ?progress:(string -> unit) -> ?scale:float -> unit -> ctx
(** Builds the ablation collection ([scale] multiplies its size;
    default 1.0 is a few thousand documents — deliberately smaller than
    the paper presets so the full ablation suite stays fast). *)

val policy_table : ctx -> Util.Tables.t
val medium_pseg_table : ctx -> Util.Tables.t
val threshold_table : ctx -> Util.Tables.t
val daat_table : ctx -> Util.Tables.t

val journal_table : ctx -> Util.Tables.t
(** Journaled vs plain store construction and querying — the paper's
    "would not introduce excessive overhead" conjecture, measured. *)

val btree_cache_table : ctx -> Util.Tables.t
(** The baseline's "limited and unsophisticated caching of index nodes"
    as a knob: 0-3 cached levels, showing how much of Mneme's advantage
    the custom package could have recovered (the paper's point is that
    this is exactly the effort one buys off the shelf). *)

val compression_table : ctx -> Util.Tables.t
(** Index volume under 32-bit, v-byte, Elias gamma/delta and per-term
    Golomb coding of the gap streams — the Zobel et al. axis the paper
    holds fixed ("the compression techniques ... are pre-determined by
    the existing INQUERY system"). *)

val signature_table : ctx -> Util.Tables.t
(** Inverted file vs signature file (sequential and bit-sliced) on
    conjunctive queries: file size, bytes read per query, and false-drop
    rate — the access-method comparison the paper cites but does not
    run. *)

val seek_model_table : ?progress:(string -> unit) -> unit -> Util.Tables.t
(** Self-contained: the three system versions under the flat per-block
    calibration vs a seek+transfer split, showing how much contiguous
    segment layout ("careful file allocation sympathetic to the device
    transfer block size") is worth once seeks are modelled. *)

val update_table : ?progress:(string -> unit) -> ?adds:int -> ?deletes:int -> unit -> Util.Tables.t
(** Self-contained (builds its own small collection); defaults: 300
    additions, 60 deletions. *)

val all : ctx -> (string * Util.Tables.t) list
(** Every ablation, labelled. *)
