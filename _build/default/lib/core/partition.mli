(** The paper's three-way partition of inverted-list objects.

    "First, in all of the test collections, approximately 50% of the
    inverted lists are 12 bytes or less.  By allocating a 16 byte object
    (4 bytes for a size field) for every inverted list less than or
    equal to 12 bytes, we can conveniently fit a whole logical segment
    (255 objects) in one 4 Kbyte physical segment. ...  All inverted
    lists larger than 4 Kbytes were allocated ... in a large object
    pool.  The remaining inverted lists ... were allocated in a medium
    object pool." *)

type size_class = Small | Medium | Large

type thresholds = { small_max : int; large_min : int }

val default : thresholds
(** [small_max = 12], [large_min = 4097] (strictly larger than 4 KB). *)

val classify : ?thresholds:thresholds -> int -> size_class
(** Classify a record by its byte size. *)

val class_name : size_class -> string
(** "small" / "medium" / "large" — also the Mneme pool names. *)

val census : ?thresholds:thresholds -> int array -> int * int * int
(** [(small, medium, large)] counts over an array of record sizes. *)
