(** The paper's experimental procedure, end to end.

    [prepare] builds one collection into both index files (B-tree and
    Mneme) inside a fresh simulated file system.  [run_query_set] then
    reproduces one timed run: read the "chill file" (purge the OS
    cache), open the chosen index version, process the whole query set
    in batch mode, and report the quantities of Tables 3-6 — simulated
    wall-clock, system+I/O and engine-CPU times, disk inputs (I), file
    accesses per record lookup (A), kilobytes read (B), and per-buffer
    hit rates. *)

type version = Btree | Mneme_no_cache | Mneme_cache

val version_name : version -> string
(** "B-Tree", "Mneme, No Cache", "Mneme, Cache". *)

type prepared = {
  model : Collections.Docmodel.t;
  vfs : Vfs.t;
  indexer : Inquery.Indexer.t;
  dict : Inquery.Dictionary.t;
  record_sizes : (int * int) array;  (** (term id, record bytes), ascending term id *)
  largest_record : int;
  record_count : int;
  btree_file : string;
  mneme_file : string;
  catalog_file : string;  (** persisted dictionary + collection stats *)
  btree_size : int;  (** file bytes after build *)
  mneme_size : int;
}

val prepare :
  ?progress:(string -> unit) -> ?cost_model:Vfs.Cost_model.t -> Collections.Docmodel.t -> prepared
(** Generate, index, and build both files.  [progress] receives coarse
    phase messages; [cost_model] substitutes hardware constants (the
    seek-model ablation). *)

val default_buffers : prepared -> Buffer_sizing.t
(** The Table 2 heuristics applied to this collection. *)

type run = {
  version : version;
  n_queries : int;
  wall_s : float;
  sys_io_s : float;
  engine_cpu_s : float;
  io_inputs : int;  (** "I" *)
  file_accesses : int;
  record_lookups : int;
  kbytes_read : float;  (** "B" *)
  postings_scored : int;
  buffers : (string * Mneme.Buffer_pool.stats) list;  (** Mneme versions only *)
}

val accesses_per_lookup : run -> float
(** "A"; 0 when no lookups were performed. *)

val open_engine :
  ?buffers:Buffer_sizing.t -> ?policy:Mneme.Buffer_pool.policy -> prepared -> version -> Engine.t
(** A fresh session over one version (chill + open), for interactive
    use and the examples.  [buffers] defaults to {!default_buffers}
    (ignored for [Btree]; forced to zero for [Mneme_no_cache]). *)

val run_query_set :
  ?buffers:Buffer_sizing.t ->
  ?policy:Mneme.Buffer_pool.policy ->
  prepared ->
  version ->
  queries:string list ->
  run
(** One timed batch run, following the paper's measurement protocol. *)

val large_buffer_sweep :
  prepared -> queries:string list -> sizes:int list -> (int * float) list
(** Figure 3: large-object buffer hit rate at each capacity (bytes),
    medium and small buffers held at their defaults. *)
