(** Data series for the paper's figures.

    Figure 1: cumulative distribution of inverted-list record sizes, by
    record count and by file bytes.  Figure 2: frequency of use of terms
    with different record sizes for a query set.  Both are emitted as
    (size, value) series ready for plotting or textual display. *)

type fig1_point = { size : int; records_le : float; bytes_le : float }

val fig1 : ?points:int -> Experiment.prepared -> fig1_point list
(** Cumulative fractions at [points] log-spaced sizes (default 20)
    covering 1 byte to the largest record. *)

type fig2_point = { bucket_min : int; uses : int }

val fig2 : Experiment.prepared -> queries:string list -> fig2_point list
(** Term-use counts per power-of-two record-size bucket: every
    occurrence of an in-vocabulary term in the query set counts one use
    of its inverted list.  Buckets with zero uses are included up to the
    largest record size. *)

val small_fraction : Experiment.prepared -> float
(** Fraction of records at or under the small-object threshold — the
    paper's "approximately 50%" observation. *)

val size_census : Experiment.prepared -> int * int * int
(** (small, medium, large) record counts under the default partition. *)
