type fig1_point = { size : int; records_le : float; bytes_le : float }

let fig1 ?(points = 20) prepared =
  let cum_records = Util.Stats.Cumulative.create () in
  let cum_bytes = Util.Stats.Cumulative.create () in
  Array.iter
    (fun (_, size) ->
      Util.Stats.Cumulative.add cum_records ~value:size ~weight:1;
      Util.Stats.Cumulative.add cum_bytes ~value:size ~weight:size)
    prepared.Experiment.record_sizes;
  let max_size = prepared.Experiment.largest_record in
  let ratio = Float.pow (float_of_int max_size) (1.0 /. float_of_int (points - 1)) in
  let sizes =
    List.init points (fun i ->
        if i = points - 1 then max_size
        else max 1 (int_of_float (Float.pow ratio (float_of_int i))))
    |> List.sort_uniq compare
  in
  List.map
    (fun size ->
      {
        size;
        records_le = Util.Stats.Cumulative.fraction_le cum_records size;
        bytes_le = Util.Stats.Cumulative.fraction_le cum_bytes size;
      })
    sizes

type fig2_point = { bucket_min : int; uses : int }

let fig2 prepared ~queries =
  let size_of = Hashtbl.create (Array.length prepared.Experiment.record_sizes) in
  Array.iter
    (fun (term_id, size) -> Hashtbl.replace size_of term_id size)
    prepared.Experiment.record_sizes;
  let buckets = 24 in
  let hist = Util.Stats.Log_histogram.create ~lo:4 ~buckets in
  List.iter
    (fun query ->
      match Inquery.Query.parse query with
      | Error _ -> ()
      | Ok q ->
        List.iter
          (fun term ->
            match Inquery.Dictionary.find prepared.Experiment.dict term with
            | None -> ()
            | Some entry -> (
              match Hashtbl.find_opt size_of entry.Inquery.Dictionary.id with
              | Some size -> Util.Stats.Log_histogram.add hist size
              | None -> ()))
          (Inquery.Query.terms q))
    queries;
  let top_bucket = Util.Stats.Log_histogram.bucket_of hist prepared.Experiment.largest_record in
  List.init (top_bucket + 1) (fun i ->
      {
        bucket_min = Util.Stats.Log_histogram.lower_bound hist i;
        uses = Util.Stats.Log_histogram.count hist i;
      })

let small_fraction prepared =
  let sizes = Array.map snd prepared.Experiment.record_sizes in
  let small, _, _ = Partition.census sizes in
  if Array.length sizes = 0 then 0.0
  else float_of_int small /. float_of_int (Array.length sizes)

let size_census prepared = Partition.census (Array.map snd prepared.Experiment.record_sizes)
