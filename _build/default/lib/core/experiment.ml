type version = Btree | Mneme_no_cache | Mneme_cache

let version_name = function
  | Btree -> "B-Tree"
  | Mneme_no_cache -> "Mneme, No Cache"
  | Mneme_cache -> "Mneme, Cache"

type prepared = {
  model : Collections.Docmodel.t;
  vfs : Vfs.t;
  indexer : Inquery.Indexer.t;
  dict : Inquery.Dictionary.t;
  record_sizes : (int * int) array;
  largest_record : int;
  record_count : int;
  btree_file : string;
  mneme_file : string;
  catalog_file : string;
  btree_size : int;
  mneme_size : int;
}

let prepare ?(progress = fun _ -> ()) ?cost_model model =
  let name = model.Collections.Docmodel.name in
  progress (Printf.sprintf "[%s] generating and indexing %d documents" name
              model.Collections.Docmodel.n_docs);
  let vfs = Vfs.create ?cost_model () in
  let indexer = Collections.Synth.build_index model in
  let dict = Inquery.Indexer.dictionary indexer in
  let record_sizes =
    Inquery.Indexer.to_records indexer
    |> Seq.map (fun (term_id, record) -> (term_id, Bytes.length record))
    |> Array.of_seq
  in
  let largest_record = Array.fold_left (fun acc (_, n) -> max acc n) 1 record_sizes in
  progress (Printf.sprintf "[%s] bulk-loading B-tree" name);
  let btree_file = name ^ ".btree" in
  let tree = Btree_backend.build vfs ~file:btree_file (Inquery.Indexer.to_records indexer) in
  Btree.flush tree;
  progress (Printf.sprintf "[%s] allocating Mneme objects" name);
  let mneme_file = name ^ ".mneme" in
  let store = Mneme_backend.build vfs ~file:mneme_file ~dict (Inquery.Indexer.to_records indexer) in
  (* The system catalog: dictionary (with the freshly assigned Mneme
     locators) and collection statistics, persisted so each timed
     session starts from disk like a real process would. *)
  let catalog_file = name ^ ".catalog" in
  Catalog.save vfs ~file:catalog_file (Catalog.of_indexer indexer);
  {
    model;
    vfs;
    indexer;
    dict;
    record_sizes;
    largest_record;
    record_count = Array.length record_sizes;
    btree_file;
    mneme_file;
    catalog_file;
    btree_size = Btree.file_size tree;
    mneme_size = Mneme.Store.file_size store;
  }

let default_buffers prepared = Buffer_sizing.compute ~largest_record:prepared.largest_record ()

type run = {
  version : version;
  n_queries : int;
  wall_s : float;
  sys_io_s : float;
  engine_cpu_s : float;
  io_inputs : int;
  file_accesses : int;
  record_lookups : int;
  kbytes_read : float;
  postings_scored : int;
  buffers : (string * Mneme.Buffer_pool.stats) list;
}

let accesses_per_lookup run =
  if run.record_lookups = 0 then 0.0
  else float_of_int run.file_accesses /. float_of_int run.record_lookups

let open_store ?policy ?buffers prepared version =
  match version with
  | Btree -> Btree_backend.open_session prepared.vfs ~file:prepared.btree_file
  | Mneme_no_cache ->
    Mneme_backend.open_session ?policy prepared.vfs ~file:prepared.mneme_file
      ~buffers:Buffer_sizing.no_cache
  | Mneme_cache ->
    let buffers =
      match buffers with Some b -> b | None -> default_buffers prepared
    in
    Mneme_backend.open_session ?policy prepared.vfs ~file:prepared.mneme_file ~buffers

(* A fresh session loads the catalog from disk (a new in-memory hash
   dictionary per session, as a new process would have) and wires the
   engine over the chosen store. *)
let make_engine prepared store =
  let catalog = Catalog.load prepared.vfs ~file:prepared.catalog_file in
  let doc_lens = catalog.Catalog.doc_lens in
  Engine.create ~vfs:prepared.vfs ~store ~dict:catalog.Catalog.dict
    ~n_docs:catalog.Catalog.n_docs
    ~avg_doc_len:(Catalog.avg_doc_length catalog)
    ~doc_len:(fun d -> if d < 0 || d >= Array.length doc_lens then 0 else doc_lens.(d))
    ()

let open_engine ?buffers ?policy prepared version =
  Vfs.purge_os_cache prepared.vfs;
  make_engine prepared (open_store ?policy ?buffers prepared version)

let run_query_set ?buffers ?policy prepared version ~queries =
  (* The chill file: no inverted data survives in the OS cache between
     runs; then the files are opened and initialisation (including the
     catalog read) completes before timing starts. *)
  Vfs.purge_os_cache prepared.vfs;
  let store = open_store ?policy ?buffers prepared version in
  let engine = make_engine prepared store in
  let clock = Vfs.clock prepared.vfs in
  let counters0 = Vfs.counters prepared.vfs in
  let clock0 = Vfs.Clock.snapshot clock in
  let results = Engine.run_batch engine queries in
  let clock1 = Vfs.Clock.snapshot clock in
  let counters1 = Vfs.counters prepared.vfs in
  let interval = Vfs.Clock.diff ~later:clock1 ~earlier:clock0 in
  let io = Vfs.diff_counters ~later:counters1 ~earlier:counters0 in
  let record_lookups =
    List.fold_left (fun acc r -> acc + r.Engine.record_lookups) 0 results
  in
  let postings_scored =
    List.fold_left (fun acc r -> acc + r.Engine.postings_scored) 0 results
  in
  {
    version;
    n_queries = List.length queries;
    wall_s = Vfs.Clock.wall_ms interval /. 1000.0;
    sys_io_s = Vfs.Clock.sys_io_ms interval /. 1000.0;
    engine_cpu_s = interval.Vfs.Clock.engine_cpu_ms /. 1000.0;
    io_inputs = io.Vfs.disk_inputs;
    file_accesses = io.Vfs.file_accesses;
    record_lookups;
    kbytes_read = float_of_int io.Vfs.bytes_read /. 1024.0;
    postings_scored;
    buffers = store.Index_store.buffer_stats ();
  }

let large_buffer_sweep prepared ~queries ~sizes =
  List.map
    (fun size ->
      let buffers = Buffer_sizing.with_large (default_buffers prepared) size in
      let run = run_query_set ~buffers prepared Mneme_cache ~queries in
      let hit_rate =
        match List.assoc_opt "large" run.buffers with
        | Some stats when stats.Mneme.Buffer_pool.refs > 0 ->
          float_of_int stats.Mneme.Buffer_pool.hits /. float_of_int stats.Mneme.Buffer_pool.refs
        | Some _ | None -> 0.0
      in
      (size, hit_rate))
    sizes
