type ctx = {
  ctx_scale : float;
  progress : string -> unit;
  mutable prepared_cache : (string * Experiment.prepared) list;
  runs : (string * string * Experiment.version, Experiment.run) Hashtbl.t;
}

let create_ctx ?(progress = fun _ -> ()) ?(scale = 1.0) () =
  { ctx_scale = scale; progress; prepared_cache = []; runs = Hashtbl.create 32 }

let scale ctx = ctx.ctx_scale

let prepared ctx name =
  match List.assoc_opt name ctx.prepared_cache with
  | Some p -> p
  | None ->
    let model = Collections.Presets.find ~scale:ctx.ctx_scale name in
    let p = Experiment.prepare ~progress:ctx.progress model in
    ctx.prepared_cache <- (name, p) :: ctx.prepared_cache;
    p

let query_spec ctx collection set =
  let model = Collections.Presets.find ~scale:ctx.ctx_scale collection in
  match List.assoc_opt set (Collections.Presets.query_sets model) with
  | Some spec -> (model, spec)
  | None ->
    invalid_arg (Printf.sprintf "Paper.queries: no query set %s for %s" set collection)

let queries ctx collection set =
  let model, spec = query_spec ctx collection set in
  Collections.Querygen.generate model spec

let run ctx collection set version =
  let key = (collection, set, version) in
  match Hashtbl.find_opt ctx.runs key with
  | Some r -> r
  | None ->
    let p = prepared ctx collection in
    let qs = queries ctx collection set in
    ctx.progress
      (Printf.sprintf "[%s] query set %s, %s" collection set (Experiment.version_name version));
    let r = Experiment.run_query_set p version ~queries:qs in
    Hashtbl.replace ctx.runs key r;
    r

let collections_with_sets _ctx =
  [
    ("cacm", [ "1"; "2"; "3" ]);
    ("legal", [ "1"; "2" ]);
    ("tipster1", [ "1" ]);
    ("tipster", [ "1" ]);
  ]

let collection_names ctx = List.map fst (collections_with_sets ctx)

let kb = Util.Tables.fmt_kbytes

let table1 ctx =
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Collection", Util.Tables.Left);
          ("Number of Documents", Util.Tables.Right);
          ("Collection Size", Util.Tables.Right);
          ("# of Records", Util.Tables.Right);
          ("B-Tree Size", Util.Tables.Right);
          ("Mneme Size", Util.Tables.Right);
        ]
  in
  List.iter
    (fun name ->
      let p = prepared ctx name in
      Util.Tables.add_row t
        [
          name;
          string_of_int (Inquery.Indexer.document_count p.Experiment.indexer);
          kb (Inquery.Indexer.collection_bytes p.Experiment.indexer);
          string_of_int p.Experiment.record_count;
          kb p.Experiment.btree_size;
          kb p.Experiment.mneme_size;
        ])
    (collection_names ctx);
  t

let table2 ctx =
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Collection", Util.Tables.Left);
          ("Small", Util.Tables.Right);
          ("Medium", Util.Tables.Right);
          ("Large", Util.Tables.Right);
        ]
  in
  List.iter
    (fun name ->
      let p = prepared ctx name in
      let b = Experiment.default_buffers p in
      Util.Tables.add_row t
        [
          name;
          Util.Tables.fmt_float ~decimals:1 (float_of_int b.Buffer_sizing.small /. 1024.0);
          Util.Tables.fmt_float ~decimals:1 (float_of_int b.Buffer_sizing.medium /. 1024.0);
          string_of_int (b.Buffer_sizing.large / 1024);
        ])
    (collection_names ctx);
  t

let versions = [ Experiment.Btree; Experiment.Mneme_no_cache; Experiment.Mneme_cache ]

let improvement ~btree ~cache = if btree <= 0.0 then 0.0 else (btree -. cache) /. btree

let time_table ctx ~extract =
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Collection", Util.Tables.Left);
          ("Query Set", Util.Tables.Left);
          ("B-Tree", Util.Tables.Right);
          ("Mneme, No Cache", Util.Tables.Right);
          ("Mneme, Cache", Util.Tables.Right);
          ("Improvement", Util.Tables.Right);
        ]
  in
  List.iter
    (fun (collection, sets) ->
      List.iter
        (fun set ->
          let times = List.map (fun v -> extract (run ctx collection set v)) versions in
          match times with
          | [ btree; nocache; cache ] ->
            Util.Tables.add_row t
              [
                collection;
                set;
                Util.Tables.fmt_float btree;
                Util.Tables.fmt_float nocache;
                Util.Tables.fmt_float cache;
                Util.Tables.fmt_pct (improvement ~btree ~cache);
              ]
          | _ -> assert false)
        sets)
    (collections_with_sets ctx);
  t

let table3 ctx = time_table ctx ~extract:(fun r -> r.Experiment.wall_s)
let table4 ctx = time_table ctx ~extract:(fun r -> r.Experiment.sys_io_s)

let table5 ctx =
  let t =
    Util.Tables.create
      ~columns:
        ([ ("Collection", Util.Tables.Left); ("Query Set", Util.Tables.Left) ]
        @ List.concat_map
            (fun v ->
              let tag =
                match v with
                | Experiment.Btree -> "BT"
                | Experiment.Mneme_no_cache -> "Mn"
                | Experiment.Mneme_cache -> "Mc"
              in
              [ (tag ^ " I", Util.Tables.Right); (tag ^ " A", Util.Tables.Right);
                (tag ^ " B", Util.Tables.Right) ])
            versions)
  in
  List.iter
    (fun (collection, sets) ->
      List.iter
        (fun set ->
          let cells =
            List.concat_map
              (fun v ->
                let r = run ctx collection set v in
                [
                  string_of_int r.Experiment.io_inputs;
                  Util.Tables.fmt_float (Experiment.accesses_per_lookup r);
                  string_of_int (int_of_float r.Experiment.kbytes_read);
                ])
              versions
          in
          Util.Tables.add_row t ((collection :: [ set ]) @ cells))
        sets)
    (collections_with_sets ctx);
  t

let table6 ctx =
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Collection", Util.Tables.Left);
          ("Query Set", Util.Tables.Left);
          ("S Refs", Util.Tables.Right);
          ("S Hits", Util.Tables.Right);
          ("S Rate", Util.Tables.Right);
          ("M Refs", Util.Tables.Right);
          ("M Hits", Util.Tables.Right);
          ("M Rate", Util.Tables.Right);
          ("L Refs", Util.Tables.Right);
          ("L Hits", Util.Tables.Right);
          ("L Rate", Util.Tables.Right);
        ]
  in
  List.iter
    (fun (collection, sets) ->
      List.iter
        (fun set ->
          let r = run ctx collection set Experiment.Mneme_cache in
          let cells =
            List.concat_map
              (fun pool ->
                match List.assoc_opt pool r.Experiment.buffers with
                | Some s ->
                  let rate =
                    if s.Mneme.Buffer_pool.refs = 0 then 0.0
                    else
                      float_of_int s.Mneme.Buffer_pool.hits
                      /. float_of_int s.Mneme.Buffer_pool.refs
                  in
                  [
                    string_of_int s.Mneme.Buffer_pool.refs;
                    string_of_int s.Mneme.Buffer_pool.hits;
                    Util.Tables.fmt_float rate;
                  ]
                | None -> [ "0"; "0"; "0.00" ])
              [ "small"; "medium"; "large" ]
          in
          Util.Tables.add_row t ((collection :: [ set ]) @ cells))
        sets)
    (collections_with_sets ctx);
  t

let fig1 ctx =
  let p = prepared ctx "legal" in
  let t =
    Util.Tables.create
      ~columns:
        [
          ("Record Size (bytes)", Util.Tables.Right);
          ("% of Records", Util.Tables.Right);
          ("% of File Size", Util.Tables.Right);
        ]
  in
  List.iter
    (fun pt ->
      Util.Tables.add_row t
        [
          string_of_int pt.Report.size;
          Util.Tables.fmt_float (100.0 *. pt.Report.records_le);
          Util.Tables.fmt_float (100.0 *. pt.Report.bytes_le);
        ])
    (Report.fig1 p);
  t

let fig2 ctx =
  let p = prepared ctx "legal" in
  let qs = queries ctx "legal" "2" in
  let t =
    Util.Tables.create
      ~columns:[ ("Record Size >= (bytes)", Util.Tables.Right); ("Uses", Util.Tables.Right) ]
  in
  List.iter
    (fun pt ->
      Util.Tables.add_row t
        [ string_of_int pt.Report.bucket_min; string_of_int pt.Report.uses ])
    (Report.fig2 p ~queries:qs);
  t

let fig3 ?sizes ctx =
  let collection = "tipster" in
  let p = prepared ctx collection in
  let default_large = (Experiment.default_buffers p).Buffer_sizing.large in
  let sizes =
    match sizes with
    | Some s -> s
    | None ->
      [ 1; 2; 4; 8; 12; 16; 24; 32; 48 ]
      |> List.map (fun k -> max 8192 (k * default_large / 8))
      |> List.sort_uniq compare
  in
  let qs = queries ctx collection "1" in
  let t =
    Util.Tables.create
      ~columns:[ ("Buffer Size (KB)", Util.Tables.Right); ("Hit Rate", Util.Tables.Right) ]
  in
  List.iter
    (fun (size, rate) ->
      Util.Tables.add_row t [ string_of_int (size / 1024); Util.Tables.fmt_float rate ])
    (Experiment.large_buffer_sweep p ~queries:qs ~sizes);
  t

let all ctx =
  [
    ("Figure 1: cumulative inverted-list size distribution (Legal)", fig1 ctx);
    ("Table 1: document collection statistics (sizes in KB)", table1 ctx);
    ("Figure 2: frequency of use by record size, Legal query set 2", fig2 ctx);
    ("Table 2: Mneme buffer sizes (KB)", table2 ctx);
    ("Table 3: wall-clock times (seconds, simulated)", table3 ctx);
    ("Table 4: system CPU plus I/O times (seconds, simulated)", table4 ctx);
    ("Table 5: I/O statistics (I = disk inputs, A = accesses/lookup, B = KB read)", table5 ctx);
    ("Table 6: buffer hit rates (Mneme, Cache)", table6 ctx);
    ("Figure 3: large-object buffer hit rate vs size (TIPSTER query set 1)", fig3 ctx);
  ]
