(** The baseline record manager: a disk-page B+tree keyed by term id,
    with variable-length records in a heap region of the same file.

    This stands in for INQUERY's custom B-tree package.  Faithful to the
    paper's characterisation of that package, node caching is
    deliberately minimal: only the root page is kept in memory, so every
    lookup reads [height - 1] node pages plus the record extent — "every
    record lookup requires more than one disk access", with the access
    count growing as the tree deepens (the paper's A statistic of
    1.44-3.09 file accesses per lookup).

    The default page size is 1 KB, matching the fanout implied by the
    paper's per-collection A values; the {!Vfs} cost model still
    transfers 8 KB disk blocks underneath, exactly as ULTRIX did.

    Records larger than a page are stored contiguously in multi-page
    heap chunks.  Deletion is lazy (no node merging): freed record
    extents are recycled through an in-process free list, and empty
    leaves are left in place — the paper's collections are archival, so
    structural shrinking is never exercised. *)

type t

val create : Vfs.t -> string -> ?page_size:int -> ?cached_levels:int -> unit -> t
(** [create vfs name ()] initialises an empty tree in a fresh file.
    [cached_levels] (default 1: root only — the paper's baseline) is
    how many node levels, from the root down, stay in memory after
    first touch; 0 reads every node from the file on every lookup.
    Raises [Invalid_argument] if the file already exists, [page_size]
    is smaller than 64 bytes, or [cached_levels] is negative. *)

val open_existing : ?cached_levels:int -> Vfs.t -> string -> t
(** Re-open a previously created tree.  Raises [Failure] if the file is
    missing or the header is corrupt. *)

val lookup : t -> int -> bytes option
(** [lookup t key] returns the record stored under [key]. *)

val mem : t -> int -> bool
(** Like {!lookup} but does not read the record extent — only the node
    path is traversed. *)

val insert : t -> int -> bytes -> unit
(** [insert t key record] adds or replaces the record under [key].
    Raises [Invalid_argument] if [key] is negative or exceeds 32 bits. *)

val delete : t -> int -> bool
(** [delete t key] removes the binding; returns whether it existed. *)

val iter : t -> (int -> bytes -> unit) -> unit
(** In ascending key order, via the leaf chain. *)

val bulk_load : t -> (int * bytes) Seq.t -> unit
(** [bulk_load t entries] builds the tree bottom-up from entries sorted
    by strictly increasing key.  The tree must be empty.  Raises
    [Invalid_argument] on unsorted input or a non-empty tree. *)

val record_count : t -> int
val height : t -> int
(** Number of node levels, 1 for a lone leaf root. *)

val page_size : t -> int
val file_size : t -> int

val free_bytes : t -> int
(** Bytes currently on the record free list (reclaimable heap space
    from deletions and replacements); the update micro-study's space
    metric. *)

val cached_levels : t -> int
val cached_nodes : t -> int
(** Node pages currently held in memory — the cost side of the
    node-caching ablation. *)

val flush : t -> unit
(** Persist the header (root, counts, heap tail) so the file can be
    re-opened by {!open_existing}. *)
