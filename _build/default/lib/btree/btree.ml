let magic = "BTRF"
let version = 1

(* Header page (page 0) layout, all little-endian:
   0  magic (4 bytes)
   4  version        u16
   6  page_size      u32
   10 root page      u32
   14 height         u32
   18 record_count   u64
   26 heap_off       u64   first free byte in the current heap chunk
   34 heap_end       u64   end of the current heap chunk
   42 page_count     u32 *)
let header_size = 46

type node =
  | Internal of { keys : int array; children : int array }
  | Leaf of { keys : int array; extents : (int * int) array; next : int }

type t = {
  vfs : Vfs.t;
  file : Vfs.file;
  page_size : int;
  leaf_cap : int;
  internal_cap : int; (* max number of keys in an internal node *)
  mutable root : int;
  mutable height : int;
  mutable record_count : int;
  mutable heap_off : int;
  mutable heap_end : int;
  mutable page_count : int;
  cached_levels : int; (* node levels kept in memory, from the root down *)
  node_cache : (int, node) Hashtbl.t;
  mutable free_list : (int * int) list; (* recycled record extents *)
}

let leaf_cap_of page_size = (page_size - 7) / 16
let internal_cap_of page_size = (page_size - 7) / 8

let write_header t =
  let b = Bytes.make header_size '\000' in
  Bytes.blit_string magic 0 b 0 4;
  Util.Bin.put_u16 b 4 version;
  Util.Bin.put_u32 b 6 t.page_size;
  Util.Bin.put_u32 b 10 t.root;
  Util.Bin.put_u32 b 14 t.height;
  Util.Bin.put_u64 b 18 t.record_count;
  Util.Bin.put_u64 b 26 t.heap_off;
  Util.Bin.put_u64 b 34 t.heap_end;
  Util.Bin.put_u32 b 42 t.page_count;
  Vfs.write t.file ~off:0 b

let serialize_node t node =
  let b = Bytes.make t.page_size '\000' in
  (match node with
  | Internal { keys; children } ->
    Util.Bin.put_u8 b 0 1;
    Util.Bin.put_u16 b 1 (Array.length keys);
    Array.iteri (fun i k -> Util.Bin.put_u32 b (3 + (i * 4)) k) keys;
    let base = 3 + (Array.length keys * 4) in
    Array.iteri (fun i c -> Util.Bin.put_u32 b (base + (i * 4)) c) children
  | Leaf { keys; extents; next } ->
    Util.Bin.put_u8 b 0 2;
    Util.Bin.put_u16 b 1 (Array.length keys);
    Util.Bin.put_u32 b 3 next;
    Array.iteri
      (fun i k ->
        let off, len = extents.(i) in
        let base = 7 + (i * 16) in
        Util.Bin.put_u32 b base k;
        Util.Bin.put_u64 b (base + 4) off;
        Util.Bin.put_u32 b (base + 12) len)
      keys);
  b

let parse_node b =
  match Util.Bin.get_u8 b 0 with
  | 1 ->
    let nkeys = Util.Bin.get_u16 b 1 in
    let keys = Array.init nkeys (fun i -> Util.Bin.get_u32 b (3 + (i * 4))) in
    let base = 3 + (nkeys * 4) in
    let children = Array.init (nkeys + 1) (fun i -> Util.Bin.get_u32 b (base + (i * 4))) in
    Internal { keys; children }
  | 2 ->
    let nkeys = Util.Bin.get_u16 b 1 in
    let next = Util.Bin.get_u32 b 3 in
    let keys = Array.init nkeys (fun i -> Util.Bin.get_u32 b (7 + (i * 16))) in
    let extents =
      Array.init nkeys (fun i ->
          (Util.Bin.get_u64 b (7 + (i * 16) + 4), Util.Bin.get_u32 b (7 + (i * 16) + 12)))
    in
    Leaf { keys; extents; next }
  | tag -> failwith (Printf.sprintf "Btree: corrupt node page (tag %d)" tag)

(* [depth] is the node's distance from the root; the top [cached_levels]
   levels stay in memory after first touch — the paper's baseline keeps
   only the root (cached_levels = 1). *)
let read_node t ~depth page =
  match Hashtbl.find_opt t.node_cache page with
  | Some node -> node
  | None ->
    let node = parse_node (Vfs.read t.file ~off:(page * t.page_size) ~len:t.page_size) in
    if depth < t.cached_levels then Hashtbl.replace t.node_cache page node;
    node

let write_node t page node =
  Vfs.write t.file ~off:(page * t.page_size) (serialize_node t node);
  if Hashtbl.mem t.node_cache page then Hashtbl.replace t.node_cache page node

let alloc_page t =
  let page = t.page_count in
  t.page_count <- t.page_count + 1;
  page

let create vfs name ?(page_size = 1024) ?(cached_levels = 1) () =
  if Vfs.file_exists vfs name then invalid_arg ("Btree.create: file exists: " ^ name);
  if page_size < 64 then invalid_arg "Btree.create: page_size too small";
  if header_size > page_size then invalid_arg "Btree.create: page_size below header size";
  if cached_levels < 0 then invalid_arg "Btree.create: cached_levels must be non-negative";
  let file = Vfs.open_file vfs name in
  let t =
    {
      vfs;
      file;
      page_size;
      leaf_cap = leaf_cap_of page_size;
      internal_cap = internal_cap_of page_size;
      root = 0;
      height = 1;
      record_count = 0;
      heap_off = 0;
      heap_end = 0;
      page_count = 1;
      cached_levels;
      node_cache = Hashtbl.create 16;
      free_list = [];
    }
  in
  let root = alloc_page t in
  t.root <- root;
  write_node t root (Leaf { keys = [||]; extents = [||]; next = 0 });
  write_header t;
  t

let open_existing ?(cached_levels = 1) vfs name =
  if cached_levels < 0 then invalid_arg "Btree.open_existing: cached_levels must be non-negative";
  if not (Vfs.file_exists vfs name) then failwith ("Btree.open_existing: no such file: " ^ name);
  let file = Vfs.open_file vfs name in
  if Vfs.size file < header_size then failwith "Btree.open_existing: truncated header";
  let b = Vfs.read file ~off:0 ~len:header_size in
  if Bytes.sub_string b 0 4 <> magic then failwith "Btree.open_existing: bad magic";
  if Util.Bin.get_u16 b 4 <> version then failwith "Btree.open_existing: version mismatch";
  let page_size = Util.Bin.get_u32 b 6 in
  {
    vfs;
    file;
    page_size;
    leaf_cap = leaf_cap_of page_size;
    internal_cap = internal_cap_of page_size;
    root = Util.Bin.get_u32 b 10;
    height = Util.Bin.get_u32 b 14;
    record_count = Util.Bin.get_u64 b 18;
    heap_off = Util.Bin.get_u64 b 26;
    heap_end = Util.Bin.get_u64 b 34;
    page_count = Util.Bin.get_u32 b 42;
    cached_levels;
    node_cache = Hashtbl.create 16;
    free_list = [];
  }

let flush t = write_header t

let record_count t = t.record_count
let height t = t.height
let page_size t = t.page_size
let file_size t = Vfs.size t.file
let free_bytes t = List.fold_left (fun acc (_, len) -> acc + len) 0 t.free_list
let cached_levels t = t.cached_levels
let cached_nodes t = Hashtbl.length t.node_cache

(* Number of separator keys <= key: the index of the child to descend into. *)
let upper_bound keys key =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if keys.(mid) <= key then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length keys)

(* Index of [key] in a leaf's sorted key array, or None. *)
let leaf_find keys key =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      if keys.(mid) = key then Some mid
      else if keys.(mid) < key then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length keys)

let check_key key =
  if key < 0 || key > 0xffffffff then invalid_arg "Btree: key out of 32-bit range"

let find_leaf t key =
  let rec go depth page =
    match read_node t ~depth page with
    | Leaf _ as leaf -> (page, leaf)
    | Internal { keys; children } -> go (depth + 1) children.(upper_bound keys key)
  in
  go 0 t.root

let lookup t key =
  check_key key;
  match find_leaf t key with
  | _, Leaf { keys; extents; _ } -> (
    match leaf_find keys key with
    | None -> None
    | Some i ->
      let off, len = extents.(i) in
      Some (Vfs.read t.file ~off ~len))
  | _, Internal _ -> assert false

let mem t key =
  check_key key;
  match find_leaf t key with
  | _, Leaf { keys; _ } -> leaf_find keys key <> None
  | _, Internal _ -> assert false

(* Record heap allocation: first-fit over the free list, else bump the
   current heap chunk, else open a new page-aligned chunk. *)
let alloc_record t len =
  let rec take acc = function
    | [] -> None
    | (off, flen) :: rest when flen >= len ->
      let remainder = flen - len in
      let rest' = if remainder >= 16 then (off + len, remainder) :: rest else rest in
      Some (off, List.rev_append acc rest')
    | extent :: rest -> take (extent :: acc) rest
  in
  match take [] t.free_list with
  | Some (off, free') ->
    t.free_list <- free';
    off
  | None ->
    if len <= t.heap_end - t.heap_off then begin
      let off = t.heap_off in
      t.heap_off <- t.heap_off + len;
      off
    end
    else begin
      let pages = max 1 ((len + t.page_size - 1) / t.page_size) in
      let off = t.page_count * t.page_size in
      t.page_count <- t.page_count + pages;
      t.heap_off <- off + len;
      t.heap_end <- off + (pages * t.page_size);
      off
    end

let free_record t off len = if len > 0 then t.free_list <- (off, len) :: t.free_list

let store_record t record =
  let len = Bytes.length record in
  let off = alloc_record t len in
  if len > 0 then Vfs.write t.file ~off record;
  (off, len)

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

let array_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let sub a lo hi = Array.sub a lo (hi - lo)

(* Recursive insert; returns [Some (separator, new_right_page)] when the
   visited node split. *)
let rec insert_rec t depth page key record =
  match read_node t ~depth page with
  | Leaf { keys; extents; next } -> (
    match leaf_find keys key with
    | Some i ->
      let old_off, old_len = extents.(i) in
      free_record t old_off old_len;
      let extents = Array.copy extents in
      extents.(i) <- store_record t record;
      write_node t page (Leaf { keys; extents; next });
      None
    | None ->
      let i = upper_bound keys key in
      let keys = array_insert keys i key in
      let extents = array_insert extents i (store_record t record) in
      t.record_count <- t.record_count + 1;
      if Array.length keys <= t.leaf_cap then begin
        write_node t page (Leaf { keys; extents; next });
        None
      end
      else begin
        let mid = Array.length keys / 2 in
        let right_page = alloc_page t in
        let right =
          Leaf
            {
              keys = sub keys mid (Array.length keys);
              extents = sub extents mid (Array.length extents);
              next;
            }
        in
        let left = Leaf { keys = sub keys 0 mid; extents = sub extents 0 mid; next = right_page } in
        write_node t right_page right;
        write_node t page left;
        Some (keys.(mid), right_page)
      end)
  | Internal { keys; children } -> (
    let i = upper_bound keys key in
    match insert_rec t (depth + 1) children.(i) key record with
    | None -> None
    | Some (sep, new_page) ->
      let keys = array_insert keys i sep in
      let children = array_insert children (i + 1) new_page in
      if Array.length keys <= t.internal_cap then begin
        write_node t page (Internal { keys; children });
        None
      end
      else begin
        let mid = Array.length keys / 2 in
        let promoted = keys.(mid) in
        let right_page = alloc_page t in
        let right =
          Internal
            {
              keys = sub keys (mid + 1) (Array.length keys);
              children = sub children (mid + 1) (Array.length children);
            }
        in
        let left = Internal { keys = sub keys 0 mid; children = sub children 0 (mid + 1) } in
        write_node t right_page right;
        write_node t page left;
        Some (promoted, right_page)
      end)

let insert t key record =
  check_key key;
  match insert_rec t 0 t.root key record with
  | None -> ()
  | Some (sep, new_page) ->
    let new_root = alloc_page t in
    let old_root = t.root in
    t.root <- new_root;
    (* The tree deepened: cached depths shifted, start afresh. *)
    Hashtbl.reset t.node_cache;
    write_node t new_root (Internal { keys = [| sep |]; children = [| old_root; new_page |] });
    t.height <- t.height + 1

let delete t key =
  check_key key;
  match find_leaf t key with
  | page, Leaf { keys; extents; next } -> (
    match leaf_find keys key with
    | None -> false
    | Some i ->
      let off, len = extents.(i) in
      free_record t off len;
      write_node t page (Leaf { keys = array_remove keys i; extents = array_remove extents i; next });
      t.record_count <- t.record_count - 1;
      true)
  | _, Internal _ -> assert false

let leftmost_leaf t =
  let rec go depth page =
    match read_node t ~depth page with
    | Leaf _ -> page
    | Internal { children; _ } -> go (depth + 1) children.(0)
  in
  go 0 t.root

let iter t f =
  let rec walk page =
    if page <> 0 then
      match read_node t ~depth:max_int page with
      | Internal _ -> failwith "Btree.iter: corrupt leaf chain"
      | Leaf { keys; extents; next } ->
        Array.iteri
          (fun i key ->
            let off, len = extents.(i) in
            f key (Vfs.read t.file ~off ~len))
          keys;
        walk next
  in
  walk (leftmost_leaf t)

let bulk_load t entries =
  if t.record_count <> 0 || t.height <> 1 then invalid_arg "Btree.bulk_load: tree not empty";
  let pending = ref [] (* reversed (min_key, page, node) of finished leaves *) in
  let cur_keys = ref [] and cur_extents = ref [] and cur_n = ref 0 in
  let last_key = ref (-1) in
  let count = ref 0 in
  let emit_leaf () =
    if !cur_n > 0 then begin
      let keys = Array.of_list (List.rev !cur_keys) in
      let extents = Array.of_list (List.rev !cur_extents) in
      let page = alloc_page t in
      (* Patch the previous leaf's next pointer now that we know it. *)
      (match !pending with
      | (mk, prev_page, Leaf { keys = pk; extents = pe; _ }) :: rest ->
        write_node t prev_page (Leaf { keys = pk; extents = pe; next = page });
        pending := (mk, prev_page, Leaf { keys = pk; extents = pe; next = page }) :: rest
      | _ -> ());
      pending := (keys.(0), page, Leaf { keys; extents; next = 0 }) :: !pending;
      cur_keys := [];
      cur_extents := [];
      cur_n := 0
    end
  in
  Seq.iter
    (fun (key, record) ->
      check_key key;
      if key <= !last_key then invalid_arg "Btree.bulk_load: keys must be strictly increasing";
      last_key := key;
      cur_keys := key :: !cur_keys;
      cur_extents := store_record t record :: !cur_extents;
      incr cur_n;
      incr count;
      if !cur_n = t.leaf_cap then emit_leaf ())
    entries;
  emit_leaf ();
  (match List.rev !pending with
  | [] ->
    (* Empty input: keep the empty root leaf written by [create]. *)
    ()
  | leaves ->
    List.iter (fun (_, page, node) -> write_node t page node) leaves;
    let rec build_levels level_nodes height =
      match level_nodes with
      | [ (_, page) ] ->
        t.root <- page;
        Hashtbl.reset t.node_cache;
        t.height <- height
      | _ ->
        let fanout = t.internal_cap + 1 in
        let rec group acc cur n = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | x :: rest ->
            if n = fanout then group (List.rev cur :: acc) [ x ] 1 rest
            else group acc (x :: cur) (n + 1) rest
        in
        let groups = group [] [] 0 level_nodes in
        let parents =
          List.map
            (fun children_list ->
              match children_list with
              | [] -> assert false
              | (min_key, _) :: _ ->
                let keys = Array.of_list (List.map fst (List.tl children_list)) in
                let children = Array.of_list (List.map snd children_list) in
                let page = alloc_page t in
                write_node t page (Internal { keys; children });
                (min_key, page))
            groups
        in
        build_levels parents (height + 1)
    in
    build_levels (List.map (fun (mk, page, _) -> (mk, page)) leaves) 1);
  t.record_count <- !count;
  write_header t
