let put_u8 b pos v =
  if v < 0 || v > 0xff then invalid_arg "Bin.put_u8: out of range";
  Bytes.set_uint8 b pos v

let get_u8 = Bytes.get_uint8

let put_u16 b pos v =
  if v < 0 || v > 0xffff then invalid_arg "Bin.put_u16: out of range";
  Bytes.set_uint16_le b pos v

let get_u16 = Bytes.get_uint16_le

let put_u32 b pos v =
  if v < 0 || v > 0xffffffff then invalid_arg "Bin.put_u32: out of range";
  Bytes.set_int32_le b pos (Int32.of_int v)

let get_u32 b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xffffffff

let put_u64 b pos v =
  if v < 0 then invalid_arg "Bin.put_u64: negative";
  Bytes.set_int64_le b pos (Int64.of_int v)

let get_u64 b pos =
  let v = Int64.to_int (Bytes.get_int64_le b pos) in
  if v < 0 then invalid_arg "Bin.get_u64: value exceeds OCaml int range";
  v

let via_scratch width put buf v =
  let b = Bytes.create width in
  put b 0 v;
  Buffer.add_bytes buf b

let buf_u8 buf v = via_scratch 1 put_u8 buf v
let buf_u16 buf v = via_scratch 2 put_u16 buf v
let buf_u32 buf v = via_scratch 4 put_u32 buf v
let buf_u64 buf v = via_scratch 8 put_u64 buf v

let buf_string buf s =
  buf_u32 buf (String.length s);
  Buffer.add_string buf s

let get_string b pos =
  let len = get_u32 b pos in
  (Bytes.sub_string b (pos + 4) len, pos + 4 + len)
