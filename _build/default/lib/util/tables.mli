(** Fixed-width plain-text table rendering for experiment reports.

    Every table and figure series in the benchmark harness is printed
    through this module so the reproduction output lines up with the
    paper's tables visually. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** [create ~columns] starts a table with the given header cells. *)

val add_row : t -> string list -> unit
(** Append one row.  Raises [Invalid_argument] if the cell count differs
    from the column count. *)

val add_separator : t -> unit
(** Append a horizontal rule row. *)

val render : t -> string
(** Render with padded columns, a header rule, and a trailing newline. *)

val print : t -> unit
(** [print t] writes [render t] to stdout. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting, default 2 decimals. *)

val fmt_pct : float -> string
(** [fmt_pct 0.37] is ["37%"]. *)

val fmt_kbytes : int -> string
(** Bytes rendered as integral Kbytes (paper convention). *)
