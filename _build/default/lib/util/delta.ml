let encode xs =
  let rec go prev = function
    | [] -> []
    | x :: rest ->
      if x <= prev then invalid_arg "Delta.encode: not strictly increasing";
      (x - prev) :: go x rest
  in
  match xs with
  | [] -> []
  | x :: rest ->
    if x < 0 then invalid_arg "Delta.encode: negative value";
    x :: go x rest

let decode gaps =
  let rec go prev = function
    | [] -> []
    | g :: rest ->
      let x = prev + g in
      x :: go x rest
  in
  match gaps with
  | [] -> []
  | g :: rest -> g :: go g rest

let encode_into buf xs =
  let rec go prev = function
    | [] -> ()
    | x :: rest ->
      if x <= prev then invalid_arg "Delta.encode_into: not strictly increasing";
      Varint.encode buf (x - prev);
      go x rest
  in
  match xs with
  | [] -> ()
  | x :: rest ->
    if x < 0 then invalid_arg "Delta.encode_into: negative value";
    Varint.encode buf x;
    go x rest

let decode_from b ~pos ~count =
  let rec go pos prev k acc =
    if k = 0 then (List.rev acc, pos)
    else
      let g, pos' = Varint.decode b ~pos in
      let x = prev + g in
      go pos' x (k - 1) (x :: acc)
  in
  go pos 0 count []
