type scheme = Gamma | Delta_code | Golomb of int

let scheme_name = function
  | Gamma -> "gamma"
  | Delta_code -> "delta"
  | Golomb b -> Printf.sprintf "golomb-%d" b

let check v = if v < 1 then invalid_arg "Codes: values must be >= 1"

let floor_log2 v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

(* gamma: unary length, then the value's low bits. *)
let encode_gamma w v =
  let n = floor_log2 v in
  Bitio.Writer.unary w n;
  Bitio.Writer.bits w ~value:(v - (1 lsl n)) ~width:n

let decode_gamma r =
  let n = Bitio.Reader.unary r in
  (1 lsl n) + Bitio.Reader.bits r ~width:n

(* delta: gamma-coded length, then the low bits. *)
let encode_delta w v =
  let n = floor_log2 v in
  encode_gamma w (n + 1);
  Bitio.Writer.bits w ~value:(v - (1 lsl n)) ~width:n

let decode_delta r =
  let n = decode_gamma r - 1 in
  (1 lsl n) + Bitio.Reader.bits r ~width:n

(* Golomb with parameter b: quotient in unary, remainder in truncated
   binary. *)
let encode_golomb w ~b v =
  if b < 1 then invalid_arg "Codes: Golomb parameter must be >= 1";
  let v = v - 1 in
  let q = v / b and r = v mod b in
  Bitio.Writer.unary w q;
  if b > 1 then begin
    let width = floor_log2 (b - 1) + 1 in
    let cutoff = (1 lsl width) - b in
    if r < cutoff then Bitio.Writer.bits w ~value:r ~width:(width - 1)
    else Bitio.Writer.bits w ~value:(r + cutoff) ~width
  end

let decode_golomb r ~b =
  if b < 1 then invalid_arg "Codes: Golomb parameter must be >= 1";
  let q = Bitio.Reader.unary r in
  let rem =
    if b = 1 then 0
    else begin
      let width = floor_log2 (b - 1) + 1 in
      let cutoff = (1 lsl width) - b in
      let head = Bitio.Reader.bits r ~width:(width - 1) in
      if head < cutoff then head
      else begin
        let extra = if Bitio.Reader.bit r then 1 else 0 in
        ((head lsl 1) lor extra) - cutoff
      end
    end
  in
  (q * b) + rem + 1

let encode w scheme v =
  check v;
  match scheme with
  | Gamma -> encode_gamma w v
  | Delta_code -> encode_delta w v
  | Golomb b -> encode_golomb w ~b v

let decode r = function
  | Gamma -> decode_gamma r
  | Delta_code -> decode_delta r
  | Golomb b -> decode_golomb r ~b

let encode_list scheme vs =
  let w = Bitio.Writer.create () in
  List.iter (encode w scheme) vs;
  Bitio.Writer.to_bytes w

let decode_list scheme b ~count =
  let r = Bitio.Reader.create b in
  List.init count (fun _ -> decode r scheme)

let bit_size scheme v =
  check v;
  match scheme with
  | Gamma ->
    let n = floor_log2 v in
    (2 * n) + 1
  | Delta_code ->
    let n = floor_log2 v in
    let m = floor_log2 (n + 1) in
    (2 * m) + 1 + n
  | Golomb b ->
    let w = Bitio.Writer.create () in
    encode_golomb w ~b v;
    Bitio.Writer.bit_length w

let golomb_parameter ~n_docs ~df =
  if df <= 0 then 1
  else max 1 (int_of_float (Float.round (0.69 *. float_of_int n_docs /. float_of_int df)))
