let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty input";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let sum_int = Array.fold_left ( + ) 0

module Log_histogram = struct
  type t = { lo : int; counts : int array; mutable total : int }

  let create ~lo ~buckets =
    if lo <= 0 then invalid_arg "Log_histogram.create: lo must be positive";
    if buckets <= 0 then invalid_arg "Log_histogram.create: buckets must be positive";
    { lo; counts = Array.make buckets 0; total = 0 }

  let bucket_of t v =
    if v < t.lo then 0
    else begin
      let rec go bound i =
        if v < bound * 2 || i = Array.length t.counts - 1 then i
        else go (bound * 2) (i + 1)
      in
      go t.lo 0
    end

  let add_weighted t v ~weight =
    let i = bucket_of t v in
    t.counts.(i) <- t.counts.(i) + weight;
    t.total <- t.total + weight

  let add t v = add_weighted t v ~weight:1
  let count t i = t.counts.(i)
  let lower_bound t i = if i = 0 then 0 else t.lo * (1 lsl i)
  let buckets t = Array.length t.counts
  let total t = t.total
end

module Cumulative = struct
  type t = { tbl : (int, int ref) Hashtbl.t; mutable total : int }

  let create () = { tbl = Hashtbl.create 64; total = 0 }

  let add t ~value ~weight =
    (match Hashtbl.find_opt t.tbl value with
    | Some r -> r := !r + weight
    | None -> Hashtbl.add t.tbl value (ref weight));
    t.total <- t.total + weight

  let points t =
    let items =
      Hashtbl.fold (fun v r acc -> (v, !r) :: acc) t.tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let total = float_of_int t.total in
    let acc = ref 0 in
    List.map
      (fun (v, w) ->
        acc := !acc + w;
        (v, float_of_int !acc /. total))
      items

  let fraction_le t v =
    if t.total = 0 then 0.0
    else begin
      let le = Hashtbl.fold (fun v' r acc -> if v' <= v then acc + !r else acc) t.tbl 0 in
      float_of_int le /. float_of_int t.total
    end
end

let linear_fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let syy = List.fold_left (fun a (_, y) -> a +. (y *. y)) 0.0 points in
  let denom = (nf *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((nf *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. nf in
  let ss_tot = syy -. (sy *. sy /. nf) in
  let ss_res =
    List.fold_left
      (fun a (x, y) ->
        let e = y -. ((slope *. x) +. intercept) in
        a +. (e *. e))
      0.0 points
  in
  let r2 = if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  (slope, intercept, r2)
