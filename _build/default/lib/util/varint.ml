let encoded_size n =
  if n < 0 then invalid_arg "Varint.encoded_size: negative";
  let rec go n acc = if n < 128 then acc else go (n lsr 7) (acc + 1) in
  go n 1

let encode buf n =
  if n < 0 then invalid_arg "Varint.encode: negative";
  let rec go n =
    if n < 128 then Buffer.add_char buf (Char.chr (n lor 0x80))
    else begin
      Buffer.add_char buf (Char.chr (n land 0x7f));
      go (n lsr 7)
    end
  in
  go n

let decode b ~pos =
  let len = Bytes.length b in
  let rec go pos shift acc =
    if pos >= len then invalid_arg "Varint.decode: truncated input";
    let c = Char.code (Bytes.unsafe_get b pos) in
    if c land 0x80 <> 0 then (acc lor ((c land 0x7f) lsl shift), pos + 1)
    else go (pos + 1) (shift + 7) (acc lor (c lsl shift))
  in
  go pos 0 0

let encode_list vs =
  let buf = Buffer.create (List.length vs * 2) in
  List.iter (encode buf) vs;
  Buffer.to_bytes buf

let fold b ~pos ~len ~init ~f =
  let stop = pos + len in
  if stop > Bytes.length b then invalid_arg "Varint.fold: range out of bounds";
  let rec go pos acc =
    if pos >= stop then acc
    else
      let v, pos' = decode b ~pos in
      if pos' > stop then invalid_arg "Varint.fold: truncated value";
      go pos' (f acc v)
  in
  go pos init

let decode_all b ~pos ~len =
  List.rev (fold b ~pos ~len ~init:[] ~f:(fun acc v -> v :: acc))
