(** Generic LRU map with a fixed entry capacity.

    Backs the simulated operating-system file cache in {!Vfs} and the
    B-tree's minimal node cache.  (The Mneme buffer manager has richer
    requirements — weighted entries, pinning, pluggable policies — and
    implements its own replacement machinery.) *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** [find t k] returns the binding and promotes it to most-recently-used. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test without promoting. *)

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** [add t k v] inserts or replaces the binding (promoting it) and
    returns the evicted least-recently-used binding, if the insert
    overflowed the capacity. *)

val remove : ('k, 'v) t -> 'k -> unit
val clear : ('k, 'v) t -> unit

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** Iterate from most- to least-recently-used. *)
