type t = { n : int; s : float; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int r) s);
    cdf.(r - 1) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { n; s; cdf }

let n t = t.n
let exponent t = t.s

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest index with cdf.(i) >= u. *)
  let rec bisect lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then bisect lo mid else bisect (mid + 1) hi
  in
  bisect 0 (t.n - 1) + 1

let probability t rank =
  if rank < 1 || rank > t.n then invalid_arg "Zipf.probability: rank out of range";
  if rank = 1 then t.cdf.(0) else t.cdf.(rank - 1) -. t.cdf.(rank - 2)

let expected_count t ~total rank = float_of_int total *. probability t rank
