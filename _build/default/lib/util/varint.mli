(** Variable-byte ("v-byte") integer coding.

    The classic IR compression scheme: each byte carries 7 payload bits,
    the high bit marks the final byte of a value.  Inverted-list records
    in {!Inquery.Postings} are sequences of v-byte coded deltas, which is
    how the original INQUERY achieved its ~60 % compression rate. *)

val encoded_size : int -> int
(** [encoded_size n] is the number of bytes [encode] will emit for [n].
    Raises [Invalid_argument] if [n < 0]. *)

val encode : Buffer.t -> int -> unit
(** [encode buf n] appends the v-byte coding of [n] to [buf].
    Raises [Invalid_argument] if [n < 0]. *)

val decode : bytes -> pos:int -> int * int
(** [decode b ~pos] reads one v-byte value starting at [pos] and returns
    [(value, next_pos)].  Raises [Invalid_argument] on truncated input. *)

val encode_list : int list -> bytes
(** [encode_list vs] codes all values back to back. *)

val decode_all : bytes -> pos:int -> len:int -> int list
(** [decode_all b ~pos ~len] decodes every value in [b.[pos .. pos+len-1]].
    Raises [Invalid_argument] if the range is truncated mid-value. *)

val fold : bytes -> pos:int -> len:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold b ~pos ~len ~init ~f] folds [f] over each decoded value without
    building an intermediate list. *)
