type align = Left | Right

type row = Cells of string list | Separator

type t = { columns : (string * align) list; mutable rows : row list }

let create ~columns = { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Tables.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let headers = List.map fst t.columns in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row ->
            match row with
            | Separator -> w
            | Cells cells -> max w (String.length (List.nth cells i)))
          (String.length h) rows)
      headers
  in
  let pad align width s =
    let fill = String.make (max 0 (width - String.length s)) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let aligns = List.map snd t.columns in
  let render_cells cells =
    let parts =
      List.map2 (fun (a, w) s -> pad a w s) (List.combine aligns widths) cells
    in
    String.concat "  " parts
  in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_cells headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      (match row with
      | Separator -> Buffer.add_string buf rule
      | Cells cells -> Buffer.add_string buf (render_cells cells));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let fmt_pct x = Printf.sprintf "%.0f%%" (x *. 100.0)
let fmt_kbytes bytes = string_of_int ((bytes + 1023) / 1024)
