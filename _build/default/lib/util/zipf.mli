(** Zipf-distributed sampling over ranks [1 .. n].

    Zipf's law drives both sides of the paper's analysis: term
    frequencies in the collection (their Figure 1 size distribution) and
    term popularity in queries (their Figure 2).  The sampler draws rank
    [r] with probability proportional to [1 / r^s]. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] precomputes the normalised CDF for [n] ranks with
    exponent [s].  Raises [Invalid_argument] if [n <= 0] or [s < 0]. *)

val n : t -> int
val exponent : t -> float

val sample : t -> Rng.t -> int
(** [sample t rng] draws a rank in [\[1, n\]] by binary search on the CDF. *)

val probability : t -> int -> float
(** [probability t rank] is the mass assigned to [rank].
    Raises [Invalid_argument] if [rank] is out of [\[1, n\]]. *)

val expected_count : t -> total:int -> int -> float
(** [expected_count t ~total rank] is [total *. probability t rank] — the
    expected number of occurrences of the rank-[rank] term among [total]
    draws.  Used to size inverted lists analytically. *)
