(** Bit-granular reading and writing over byte buffers.

    Substrate for the Elias codes in {!Codes} and the signature-file
    bitmaps.  Bits are written most-significant-first within each
    byte. *)

module Writer : sig
  type t

  val create : unit -> t

  val bit : t -> bool -> unit
  val bits : t -> value:int -> width:int -> unit
  (** Write [width] low bits of [value], most significant first.
      Raises [Invalid_argument] if [width] is outside [0, 62] or
      [value] has bits above [width]. *)

  val unary : t -> int -> unit
  (** [n] zero bits followed by a one bit. *)

  val bit_length : t -> int
  val to_bytes : t -> bytes
  (** Pad the final partial byte with zero bits. *)
end

module Reader : sig
  type t

  val create : bytes -> t
  val of_sub : bytes -> pos:int -> len:int -> t

  val bit : t -> bool
  (** Raises [Invalid_argument] past the end. *)

  val bits : t -> width:int -> int
  val unary : t -> int
  (** Count zero bits up to the terminating one bit. *)

  val bits_consumed : t -> int
  val remaining : t -> int
end
