module Writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable used : int; mutable total : int }

  let create () = { buf = Buffer.create 64; acc = 0; used = 0; total = 0 }

  let flush_byte t =
    Buffer.add_char t.buf (Char.chr t.acc);
    t.acc <- 0;
    t.used <- 0

  let bit t b =
    t.acc <- (t.acc lsl 1) lor (if b then 1 else 0);
    t.used <- t.used + 1;
    t.total <- t.total + 1;
    if t.used = 8 then flush_byte t

  let bits t ~value ~width =
    if width < 0 || width > 62 then invalid_arg "Bitio.Writer.bits: width out of range";
    if width < 62 && value lsr width <> 0 then
      invalid_arg "Bitio.Writer.bits: value wider than width";
    if value < 0 then invalid_arg "Bitio.Writer.bits: negative value";
    for i = width - 1 downto 0 do
      bit t ((value lsr i) land 1 = 1)
    done

  let unary t n =
    if n < 0 then invalid_arg "Bitio.Writer.unary: negative";
    for _ = 1 to n do
      bit t false
    done;
    bit t true

  let bit_length t = t.total

  let to_bytes t =
    let out = Buffer.create (Buffer.length t.buf + 1) in
    Buffer.add_buffer out t.buf;
    if t.used > 0 then Buffer.add_char out (Char.chr (t.acc lsl (8 - t.used)));
    Buffer.to_bytes out
end

module Reader = struct
  type t = { data : bytes; first : int; limit : int; mutable pos : int (* bit index *) }

  let of_sub data ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length data then
      invalid_arg "Bitio.Reader.of_sub: range out of bounds";
    { data; first = pos * 8; limit = (pos + len) * 8; pos = pos * 8 }

  let create data = of_sub data ~pos:0 ~len:(Bytes.length data)

  let bit t =
    if t.pos >= t.limit then invalid_arg "Bitio.Reader: past end of input";
    let byte = Char.code (Bytes.get t.data (t.pos / 8)) in
    let b = (byte lsr (7 - (t.pos mod 8))) land 1 = 1 in
    t.pos <- t.pos + 1;
    b

  let bits t ~width =
    if width < 0 || width > 62 then invalid_arg "Bitio.Reader.bits: width out of range";
    let v = ref 0 in
    for _ = 1 to width do
      v := (!v lsl 1) lor (if bit t then 1 else 0)
    done;
    !v

  let unary t =
    let n = ref 0 in
    while not (bit t) do
      incr n
    done;
    !n

  let bits_consumed t = t.pos - t.first
  let remaining t = t.limit - t.pos
end
