lib/util/tables.ml: Buffer List Printf String
