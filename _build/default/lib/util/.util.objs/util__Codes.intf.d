lib/util/codes.mli: Bitio
