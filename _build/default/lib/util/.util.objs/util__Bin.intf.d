lib/util/bin.mli: Buffer
