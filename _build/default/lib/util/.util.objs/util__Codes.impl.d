lib/util/codes.ml: Bitio Float List Printf
