lib/util/delta.ml: List Varint
