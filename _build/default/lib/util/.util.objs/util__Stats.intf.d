lib/util/stats.mli:
