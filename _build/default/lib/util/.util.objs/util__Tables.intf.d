lib/util/tables.mli:
