lib/util/delta.mli: Buffer
