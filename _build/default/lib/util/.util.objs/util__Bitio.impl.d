lib/util/bitio.ml: Buffer Bytes Char
