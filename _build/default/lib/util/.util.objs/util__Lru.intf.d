lib/util/lru.mli:
