lib/util/bin.ml: Buffer Bytes Int32 Int64 String
