lib/util/rng.mli:
