lib/util/bitio.mli:
