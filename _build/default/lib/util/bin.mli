(** Little-endian fixed-width integer (de)serialisation.

    Shared by the on-disk page formats of the B-tree package and the
    Mneme store.  All values are range-checked on write so a corrupt
    page fails loudly instead of silently wrapping. *)

val put_u8 : bytes -> int -> int -> unit
(** [put_u8 b pos v]; [v] must be in [\[0, 255\]]. *)

val get_u8 : bytes -> int -> int

val put_u16 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int

val put_u32 : bytes -> int -> int -> unit
(** [v] must fit in 32 unsigned bits. *)

val get_u32 : bytes -> int -> int

val put_u64 : bytes -> int -> int -> unit
(** [v] must be non-negative (63-bit OCaml int). *)

val get_u64 : bytes -> int -> int

val buf_u8 : Buffer.t -> int -> unit
val buf_u16 : Buffer.t -> int -> unit
val buf_u32 : Buffer.t -> int -> unit
val buf_u64 : Buffer.t -> int -> unit

val buf_string : Buffer.t -> string -> unit
(** Length-prefixed (u32) string. *)

val get_string : bytes -> int -> string * int
(** [get_string b pos] reads a length-prefixed string, returning it and
    the next position. *)
