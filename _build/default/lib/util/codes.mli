(** Integer codes for inverted-file compression studies.

    Zobel, Moffat & Sacks-Davis (VLDB'92) — cited by the paper as the
    compression-focused line of work — compare parameterless codes
    against byte-aligned schemes.  This module provides the classic
    bit-level family; {!Varint} is the byte-aligned scheme INQUERY-style
    records use.  All codes here encode {e positive} integers
    ([>= 1]). *)

type scheme = Gamma | Delta_code | Golomb of int

val scheme_name : scheme -> string
(** "gamma", "delta", "golomb-b". *)

val encode : Bitio.Writer.t -> scheme -> int -> unit
(** Raises [Invalid_argument] if the value is [< 1] (or the Golomb
    parameter is [< 1]). *)

val decode : Bitio.Reader.t -> scheme -> int

val encode_list : scheme -> int list -> bytes
val decode_list : scheme -> bytes -> count:int -> int list

val bit_size : scheme -> int -> int
(** Exact coded size in bits. *)

val golomb_parameter : n_docs:int -> df:int -> int
(** The Witten-Moffat-Bell rule of thumb [b ~ 0.69 * n/df] for coding
    document gaps of a term with document frequency [df]. *)
