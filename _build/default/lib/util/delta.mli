(** Delta (gap) coding of strictly increasing integer sequences.

    Inverted lists store document ids and within-document positions in
    ascending order; coding the gaps instead of the absolute values keeps
    the v-byte representation short. *)

val encode : int list -> int list
(** [encode xs] maps a strictly increasing non-negative sequence to its
    gap sequence (first element kept absolute).  Raises [Invalid_argument]
    if [xs] is not strictly increasing or contains a negative value. *)

val decode : int list -> int list
(** Inverse of {!encode}. *)

val encode_into : Buffer.t -> int list -> unit
(** [encode_into buf xs] v-byte codes the gap sequence of [xs] into [buf]. *)

val decode_from : bytes -> pos:int -> count:int -> int list * int
(** [decode_from b ~pos ~count] reads [count] v-byte gaps starting at
    [pos] and returns the reconstructed ascending sequence and the first
    unread position. *)
