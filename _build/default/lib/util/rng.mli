(** Deterministic pseudo-random number generation.

    Experiments must be reproducible bit-for-bit across runs and OCaml
    releases, so we carry our own splittable generator (SplitMix64 for
    seeding, xoshiro256** for the stream) instead of [Stdlib.Random]. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copies evolve separately. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal deviate. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp] of a normal deviate; used for document-length models. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  Raises [Invalid_argument] on
    an empty array. *)
