(** Descriptive statistics, histograms and cumulative distributions.

    Used to regenerate the paper's Figure 1 (cumulative distribution of
    inverted-list sizes, by record count and by file bytes) and Figure 2
    (frequency of use per size bucket). *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays shorter than 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation on a
    sorted copy.  Raises [Invalid_argument] on empty input or [p] out of
    range. *)

val sum_int : int array -> int

(** Log-scale bucketing: bucket [i] covers sizes in [[lo*2^i, lo*2^(i+1))]. *)
module Log_histogram : sig
  type t

  val create : lo:int -> buckets:int -> t
  (** [create ~lo ~buckets]: the first bucket starts at [lo] (values below
      [lo] land in bucket 0).  Raises [Invalid_argument] if [lo <= 0] or
      [buckets <= 0]. *)

  val add : t -> int -> unit
  (** Add one observation (values beyond the last bucket clamp to it). *)

  val add_weighted : t -> int -> weight:int -> unit
  (** Add [weight] observations of the same value. *)

  val count : t -> int -> int
  (** Observations in bucket [i]. *)

  val bucket_of : t -> int -> int
  (** Bucket index a value falls into. *)

  val lower_bound : t -> int -> int
  (** Smallest value mapping to bucket [i]. *)

  val buckets : t -> int
  val total : t -> int
end

(** Cumulative distribution over weighted integer observations — directly
    produces Figure 1's two curves. *)
module Cumulative : sig
  type t

  val create : unit -> t

  val add : t -> value:int -> weight:int -> unit
  (** Record an observation [value] carrying [weight] (e.g. an inverted
      list of size [value] bytes has record-weight 1 and byte-weight
      [value]). *)

  val points : t -> (int * float) list
  (** Sorted [(value, cumulative_fraction_of_total_weight)] pairs;
      fractions are in [\[0, 1\]] and reach 1.0 at the largest value. *)

  val fraction_le : t -> int -> float
  (** Fraction of total weight at values [<= v]; 0 if no observations. *)
end

val linear_fit : (float * float) list -> float * float * float
(** Least-squares [(slope, intercept, r_squared)] of y on x.
    Raises [Invalid_argument] with fewer than two points. *)
