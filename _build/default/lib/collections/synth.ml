type doc = { id : int; terms : string array; bytes : int }

(* 15 consonants (no 'q': reserved for hapax prefixes) x 5 vowels. *)
let consonants = [| 'b'; 'c'; 'd'; 'f'; 'g'; 'h'; 'k'; 'l'; 'm'; 'n'; 'p'; 'r'; 's'; 't'; 'v' |]
let vowels = [| 'a'; 'e'; 'i'; 'o'; 'u' |]
let syllable_count = Array.length consonants * Array.length vowels

let add_syllable buf i =
  Buffer.add_char buf consonants.(i / Array.length vowels);
  Buffer.add_char buf vowels.(i mod Array.length vowels)

let syllables_of n =
  (* Little-endian base-75 digits of [n], at least one syllable. *)
  let buf = Buffer.create 6 in
  let rec go n =
    add_syllable buf (n mod syllable_count);
    if n >= syllable_count then go (n / syllable_count)
  in
  go n;
  Buffer.contents buf

let core_term ~rank =
  if rank < 1 then invalid_arg "Synth.core_term: rank must be >= 1";
  syllables_of (rank - 1)

let hapax_term n = "q" ^ syllables_of n

let doc_length model rng =
  let sigma = model.Docmodel.doc_len_sigma in
  let mu = log model.Docmodel.mean_doc_len -. (sigma *. sigma /. 2.0) in
  let len = int_of_float (Util.Rng.lognormal rng ~mu ~sigma) in
  max model.Docmodel.min_doc_len len

let documents model =
  let open Docmodel in
  let gen () =
    let rng = Util.Rng.create ~seed:model.seed in
    let zipf = Util.Zipf.create ~n:model.core_vocab ~s:model.zipf_s in
    let hapax_counter = ref 0 in
    let core_names = Array.make model.core_vocab "" in
    let core rank =
      let name = core_names.(rank - 1) in
      if name <> "" then name
      else begin
        let name = core_term ~rank in
        core_names.(rank - 1) <- name;
        name
      end
    in
    let draw_rank () =
      (* Resample past the withheld "stop word" head, if any. *)
      let rec go tries =
        let rank = Util.Zipf.sample zipf rng in
        if rank > model.stop_top || tries > 50 then rank else go (tries + 1)
      in
      go 0
    in
    fun id ->
      let len = doc_length model rng in
      let terms =
        Array.init len (fun _ ->
            if model.hapax_prob > 0.0 && Util.Rng.float rng 1.0 < model.hapax_prob then begin
              let n = !hapax_counter in
              incr hapax_counter;
              hapax_term n
            end
            else core (draw_rank ()))
      in
      let token_bytes = Array.fold_left (fun acc t -> acc + String.length t + 1) 0 terms in
      let bytes =
        int_of_float (float_of_int token_bytes *. model.markup_overhead)
      in
      { id; terms; bytes }
  in
  (* Each traversal restarts the deterministic generator. *)
  let rec seq make id () =
    if id >= model.n_docs then Seq.Nil else Seq.Cons (make id, seq make (id + 1))
  in
  fun () -> seq (gen ()) 0 ()

let document_text doc = String.concat " " (Array.to_list doc.terms)

let build_index ?progress model =
  let indexer = Inquery.Indexer.create () in
  Seq.iter
    (fun doc ->
      Inquery.Indexer.add_document_terms indexer ~doc_id:doc.id ~bytes:doc.bytes doc.terms;
      match progress with
      | Some f when (doc.id + 1) mod 5000 = 0 -> f ~docs_done:(doc.id + 1)
      | Some _ | None -> ())
    (documents model);
  indexer
