(** Statistical model of a synthetic document collection.

    The paper's collections (CACM, Legal, TIPSTER) are proprietary; what
    its experiments actually depend on is the {e shape} of the data:

    - Zipf-distributed term frequencies, giving the inverted-list size
      distribution of their Figure 1 — about half of all lists at or
      under 12 bytes, and a head of lists running to megabytes;
    - document counts and lengths that set total index volume relative
      to buffer sizes.

    A model is a recipe: a {e core} vocabulary drawn with a Zipf
    exponent (the top [stop_top] ranks are withheld, standing for the
    stop words the paper's runs removed), plus a {e hapax stream} — with
    probability [hapax_prob] a token is a brand-new term that will never
    recur, reproducing the large population of one-occurrence terms real
    text has and a bounded Zipf vocabulary lacks. *)

type t = {
  name : string;
  n_docs : int;
  core_vocab : int;  (** number of recurring (core) terms *)
  zipf_s : float;  (** Zipf exponent over the core vocabulary *)
  stop_top : int;  (** leading ranks withheld as "stop words" *)
  hapax_prob : float;  (** probability a token is a fresh unique term *)
  mean_doc_len : float;  (** mean tokens per document *)
  doc_len_sigma : float;  (** lognormal sigma of document length *)
  min_doc_len : int;
  markup_overhead : float;
      (** raw-collection-size multiplier over token bytes (tags,
          whitespace, headers in the original files) *)
  seed : int;
}

val make :
  name:string ->
  n_docs:int ->
  core_vocab:int ->
  ?zipf_s:float ->
  ?stop_top:int ->
  ?hapax_prob:float ->
  mean_doc_len:float ->
  ?doc_len_sigma:float ->
  ?min_doc_len:int ->
  ?markup_overhead:float ->
  ?seed:int ->
  unit ->
  t
(** Defaults: [zipf_s = 0.8], [stop_top = 0], [hapax_prob = 0.01],
    [doc_len_sigma = 0.6], [min_doc_len = 8], [markup_overhead = 1.25],
    [seed = 42].  Raises [Invalid_argument] on non-positive counts or
    probabilities outside [0, 1). *)

val expected_tokens : t -> float
(** [n_docs *. mean_doc_len]. *)
