lib/collections/synth.mli: Docmodel Inquery Seq
