lib/collections/analysis.ml: Array Docmodel Hashtbl Inquery List Seq Synth Util
