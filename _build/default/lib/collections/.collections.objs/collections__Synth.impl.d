lib/collections/synth.ml: Array Buffer Docmodel Inquery Seq String Util
