lib/collections/analysis.mli: Docmodel Inquery
