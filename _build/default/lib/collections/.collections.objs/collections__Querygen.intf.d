lib/collections/querygen.mli: Docmodel Inquery
