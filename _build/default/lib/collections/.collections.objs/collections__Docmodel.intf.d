lib/collections/docmodel.mli:
