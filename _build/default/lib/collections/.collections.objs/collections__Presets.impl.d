lib/collections/presets.ml: Docmodel Querygen
