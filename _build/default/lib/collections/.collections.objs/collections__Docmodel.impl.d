lib/collections/docmodel.ml:
