lib/collections/presets.mli: Docmodel Querygen
