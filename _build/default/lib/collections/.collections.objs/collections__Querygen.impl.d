lib/collections/querygen.ml: Array Docmodel Float Hashtbl Inquery List Printf String Synth Util
