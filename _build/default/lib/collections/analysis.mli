(** Informetric analysis of a built collection.

    Wolfram's papers (cited by the reproduction target) argue that "the
    informetric characteristics of document databases should be taken
    into consideration when designing the files used by an IR system";
    the paper answers that it has "tried to take this advice to heart".
    This module measures those characteristics on a built index, so the
    synthetic calibration can be validated against the laws it claims to
    embody (Zipf rank-frequency, a heavy hapax population, Heaps-style
    vocabulary growth). *)

type term_profile = {
  distinct_terms : int;
  hapax_terms : int;  (** terms occurring exactly once *)
  total_occurrences : int;
  top_frequency : int;  (** occurrences of the most frequent term *)
}

val term_profile : Inquery.Indexer.t -> term_profile

val hapax_fraction : term_profile -> float
(** [hapax / distinct]; 0 on an empty profile. *)

val zipf_fit : ?ranks:int -> Inquery.Indexer.t -> float * float
(** [(s, r_squared)] of the log-log regression [log cf = -s log rank +
    c] over the top [ranks] (default 200) terms by collection frequency
    — the empirical Zipf exponent.  Raises [Invalid_argument] if the
    index has fewer than two terms. *)

val vocabulary_growth : Docmodel.t -> samples:int -> (int * int) list
(** Heaps-law curve: [(tokens seen, distinct terms so far)] sampled at
    [samples] evenly spaced points while streaming the collection's
    documents.  Raises [Invalid_argument] if [samples < 1]. *)

val heaps_fit : (int * int) list -> float * float
(** [(beta, r_squared)] of [log distinct = beta log tokens + c] over a
    growth curve — Heaps' law exponent (≈0.4-0.6 for real text).
    Raises [Invalid_argument] with fewer than two points. *)
