type t = {
  name : string;
  n_docs : int;
  core_vocab : int;
  zipf_s : float;
  stop_top : int;
  hapax_prob : float;
  mean_doc_len : float;
  doc_len_sigma : float;
  min_doc_len : int;
  markup_overhead : float;
  seed : int;
}

let make ~name ~n_docs ~core_vocab ?(zipf_s = 0.8) ?(stop_top = 0) ?(hapax_prob = 0.01)
    ~mean_doc_len ?(doc_len_sigma = 0.6) ?(min_doc_len = 8) ?(markup_overhead = 1.25)
    ?(seed = 42) () =
  if n_docs <= 0 then invalid_arg "Docmodel.make: n_docs must be positive";
  if core_vocab <= 0 then invalid_arg "Docmodel.make: core_vocab must be positive";
  if hapax_prob < 0.0 || hapax_prob >= 1.0 then
    invalid_arg "Docmodel.make: hapax_prob must be in [0, 1)";
  if mean_doc_len <= 0.0 then invalid_arg "Docmodel.make: mean_doc_len must be positive";
  if min_doc_len <= 0 then invalid_arg "Docmodel.make: min_doc_len must be positive";
  {
    name;
    n_docs;
    core_vocab;
    zipf_s;
    stop_top;
    hapax_prob;
    mean_doc_len;
    doc_len_sigma;
    min_doc_len;
    markup_overhead;
    seed;
  }

let expected_tokens t = float_of_int t.n_docs *. t.mean_doc_len
