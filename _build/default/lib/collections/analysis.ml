type term_profile = {
  distinct_terms : int;
  hapax_terms : int;
  total_occurrences : int;
  top_frequency : int;
}

let term_profile indexer =
  let distinct = ref 0 and hapax = ref 0 and total = ref 0 and top = ref 0 in
  Inquery.Dictionary.iter (Inquery.Indexer.dictionary indexer) (fun e ->
      incr distinct;
      let cf = e.Inquery.Dictionary.cf in
      if cf = 1 then incr hapax;
      total := !total + cf;
      if cf > !top then top := cf);
  {
    distinct_terms = !distinct;
    hapax_terms = !hapax;
    total_occurrences = !total;
    top_frequency = !top;
  }

let hapax_fraction p =
  if p.distinct_terms = 0 then 0.0
  else float_of_int p.hapax_terms /. float_of_int p.distinct_terms

let zipf_fit ?(ranks = 200) indexer =
  let cfs = ref [] in
  Inquery.Dictionary.iter (Inquery.Indexer.dictionary indexer) (fun e ->
      cfs := e.Inquery.Dictionary.cf :: !cfs);
  let sorted = List.sort (fun a b -> compare b a) !cfs in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let top = take ranks sorted in
  if List.length top < 2 then invalid_arg "Analysis.zipf_fit: need at least two terms";
  let points =
    List.mapi (fun i cf -> (log (float_of_int (i + 1)), log (float_of_int (max 1 cf)))) top
  in
  let slope, _, r2 = Util.Stats.linear_fit points in
  (-.slope, r2)

let vocabulary_growth model ~samples =
  if samples < 1 then invalid_arg "Analysis.vocabulary_growth: samples must be positive";
  let expected = int_of_float (Docmodel.expected_tokens model) in
  let stride = max 1 (expected / samples) in
  let seen = Hashtbl.create 4096 in
  let tokens = ref 0 in
  let next_sample = ref stride in
  let out = ref [] in
  Seq.iter
    (fun doc ->
      Array.iter
        (fun term ->
          incr tokens;
          if not (Hashtbl.mem seen term) then Hashtbl.add seen term ();
          if !tokens >= !next_sample then begin
            out := (!tokens, Hashtbl.length seen) :: !out;
            next_sample := !next_sample + stride
          end)
        doc.Synth.terms)
    (Synth.documents model);
  (* Always close the curve with the final state. *)
  (match !out with
  | (t, _) :: _ when t = !tokens -> ()
  | _ -> out := (!tokens, Hashtbl.length seen) :: !out);
  List.rev !out

let heaps_fit curve =
  if List.length curve < 2 then invalid_arg "Analysis.heaps_fit: need at least two points";
  let points =
    List.map
      (fun (tokens, distinct) ->
        (log (float_of_int (max 1 tokens)), log (float_of_int (max 1 distinct))))
      curve
  in
  let slope, _, r2 = Util.Stats.linear_fit points in
  (slope, r2)
