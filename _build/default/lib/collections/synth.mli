(** Synthetic document generation from a {!Docmodel}.

    Terms are deterministic pseudo-words: core rank [r] maps to a
    consonant-vowel syllable encoding (frequent terms get short words,
    as in real language), and hapax terms carry a distinct ["q"] prefix
    so the two populations can never collide.  Generation is a pure
    function of the model (including its seed): the same model always
    yields byte-identical documents. *)

type doc = { id : int; terms : string array; bytes : int }
(** [terms.(i)] is the token at position [i]; [bytes] is the raw-text
    size attributed to the document (token bytes times the model's
    markup overhead). *)

val core_term : rank:int -> string
(** Pseudo-word of the core term with Zipf rank [rank] (1-based).
    Raises [Invalid_argument] if [rank < 1]. *)

val hapax_term : int -> string
(** The [n]-th one-occurrence term. *)

val documents : Docmodel.t -> doc Seq.t
(** The collection's documents, ids [0 .. n_docs - 1].  The sequence is
    re-playable (re-evaluation regenerates deterministically). *)

val document_text : doc -> string
(** Space-joined token text, for the examples that exercise the
    full-text path. *)

val build_index : ?progress:(docs_done:int -> unit) -> Docmodel.t -> Inquery.Indexer.t
(** Generate and index the whole collection. *)
