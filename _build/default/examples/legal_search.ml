(* A scaled-down "Legal" collection end to end: build the calibrated
   synthetic collection, run its two query sets through the Mneme-backed
   engine, and score the rankings against a synthetic relevance file —
   the batch-mode evaluation loop of the paper, including recall and
   precision (the metrics the paper holds fixed).

   Run with: dune exec examples/legal_search.exe *)

let () =
  let model = Collections.Presets.legal ~scale:0.08 () in
  Printf.printf "Building %s: %d documents...\n%!" model.Collections.Docmodel.name
    model.Collections.Docmodel.n_docs;
  let prepared = Core.Experiment.prepare model in
  Printf.printf "Indexed: %d inverted lists, largest %d bytes, Mneme file %d KB.\n\n"
    prepared.Core.Experiment.record_count prepared.Core.Experiment.largest_record
    (prepared.Core.Experiment.mneme_size / 1024);

  let engine = Core.Experiment.open_engine prepared Core.Experiment.Mneme_cache in
  let clock0 = Vfs.Clock.snapshot (Vfs.clock prepared.Core.Experiment.vfs) in
  List.iter
    (fun (set_name, spec) ->
      let queries = Collections.Querygen.generate model spec in
      let judgments = Collections.Querygen.judgments model spec ~n_relevant:15 in
      Printf.printf "--- Legal query set %s (%d queries) ---\n" set_name (List.length queries);
      (* Show the first two queries verbatim. *)
      List.iteri (fun i q -> if i < 2 then Printf.printf "  e.g. %s\n" q) queries;
      let ap_sum = ref 0.0 and p10_sum = ref 0.0 and lookups = ref 0 in
      List.iter2
        (fun q rel ->
          let result = Core.Engine.run_query_string ~top_k:100 engine q in
          let ranked = List.map (fun r -> r.Inquery.Ranking.doc) result.Core.Engine.ranked in
          ap_sum := !ap_sum +. Inquery.Eval.average_precision ranked rel;
          p10_sum := !p10_sum +. Inquery.Eval.precision_at ranked rel ~k:10;
          lookups := !lookups + result.Core.Engine.record_lookups)
        queries judgments;
      let n = float_of_int (List.length queries) in
      Printf.printf "  record lookups: %d\n" !lookups;
      Printf.printf "  mean average precision (synthetic judgments): %.4f\n" (!ap_sum /. n);
      Printf.printf "  mean P@10: %.4f\n" (!p10_sum /. n);
      (* Buffer behaviour accumulated across the set. *)
      List.iter
        (fun (pool, s) ->
          if s.Mneme.Buffer_pool.refs > 0 then
            Printf.printf "  %s buffer: %d refs, %d hits (%.0f%%)\n" pool
              s.Mneme.Buffer_pool.refs s.Mneme.Buffer_pool.hits
              (100.0
              *. float_of_int s.Mneme.Buffer_pool.hits
              /. float_of_int s.Mneme.Buffer_pool.refs))
        ((Core.Engine.store engine).Core.Index_store.buffer_stats ());
      print_newline ())
    (Collections.Presets.query_sets model);

  (* The simulated clock, over query processing only (build excluded). *)
  let s =
    Vfs.Clock.diff
      ~later:(Vfs.Clock.snapshot (Vfs.clock prepared.Core.Experiment.vfs))
      ~earlier:clock0
  in
  Printf.printf "Simulated query time: %.2f s wall (%.2f s engine CPU, %.2f s system+I/O)\n"
    (Vfs.Clock.wall_ms s /. 1000.0)
    (s.Vfs.Clock.engine_cpu_ms /. 1000.0)
    (Vfs.Clock.sys_io_ms s /. 1000.0)
