examples/index_anatomy.ml: Bytes Collections Core Inquery List Printf
