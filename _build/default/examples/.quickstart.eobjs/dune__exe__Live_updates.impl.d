examples/live_updates.ml: Bytes Char Core Inquery List Mneme Printf Vfs
