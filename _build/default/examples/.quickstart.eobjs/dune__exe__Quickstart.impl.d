examples/quickstart.ml: Btree Bytes Core Inquery List Printf Vfs
