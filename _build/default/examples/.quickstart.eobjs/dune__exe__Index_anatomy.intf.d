examples/index_anatomy.mli:
