examples/calibration.mli:
