examples/buffer_tuning.ml: Collections Core List Mneme Printf
