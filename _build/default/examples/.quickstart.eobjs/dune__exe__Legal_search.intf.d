examples/legal_search.mli:
