examples/legal_search.ml: Collections Core Inquery List Mneme Printf Vfs
