examples/quickstart.mli:
