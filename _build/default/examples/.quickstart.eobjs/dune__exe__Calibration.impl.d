examples/calibration.ml: Bytes Collections Inquery List Printf Seq
