(* Quickstart: index a handful of documents, store the inverted file in
   both backends (the custom B-tree and the Mneme object store), and run
   structured queries against each.

   Run with: dune exec examples/quickstart.exe *)

let documents =
  [
    "The inverted file index is a well known mechanism for locating documents by content.";
    "Managing an inverted file index is challenging when collections reach gigabytes.";
    "A persistent object store manages storage and retrieval of objects with unique ids.";
    "INQUERY is a probabilistic retrieval system based on a Bayesian inference network.";
    "Document ranking in INQUERY is a sorting problem over combined beliefs.";
    "Buffer management policies decide which physical segments stay in main memory.";
    "The B-tree package caches index nodes naively, costing extra disk accesses per lookup.";
    "Zipf observed that term rank times frequency is roughly constant in a collection.";
  ]

let () =
  (* 1. Index the documents (stop words removed, Porter stemming on). *)
  let indexer = Inquery.Indexer.create ~stopwords:Inquery.Stopwords.default ~stem:true () in
  List.iteri (fun doc_id text -> Inquery.Indexer.add_document indexer ~doc_id text) documents;
  let dict = Inquery.Indexer.dictionary indexer in
  Printf.printf "Indexed %d documents, %d distinct terms, %d postings.\n\n"
    (Inquery.Indexer.document_count indexer)
    (Inquery.Indexer.term_count indexer)
    (Inquery.Indexer.posting_count indexer);

  (* 2. Store the inverted file in both data management subsystems. *)
  let vfs = Vfs.create () in
  let tree = Core.Btree_backend.build vfs ~file:"demo.btree" (Inquery.Indexer.to_records indexer) in
  Btree.flush tree;
  ignore (Core.Mneme_backend.build vfs ~file:"demo.mneme" ~dict (Inquery.Indexer.to_records indexer));

  (* 3. Open a session over each backend and ask the same questions. *)
  let buffers = Core.Buffer_sizing.compute ~largest_record:4096 () in
  let sessions =
    [
      Core.Btree_backend.open_session vfs ~file:"demo.btree";
      Core.Mneme_backend.open_session vfs ~file:"demo.mneme" ~buffers;
    ]
  in
  let queries =
    [
      "inverted file index";
      "#phrase( persistent object )";
      "#wsum( 3 retrieval 1 #or( ranking belief ) )";
      "#and( buffer #not( btree ) )";
    ]
  in
  List.iter
    (fun store ->
      Printf.printf "=== Backend: %s ===\n" store.Core.Index_store.name;
      let engine =
        Core.Engine.create ~vfs ~store ~dict
          ~n_docs:(Inquery.Indexer.document_count indexer)
          ~avg_doc_len:(Inquery.Indexer.avg_doc_length indexer)
          ~doc_len:(Inquery.Indexer.doc_length indexer)
          ~stopwords:Inquery.Stopwords.default ~stem:true ()
      in
      List.iter
        (fun q ->
          let result = Core.Engine.run_query_string ~top_k:3 engine q in
          Printf.printf "  %-45s ->" q;
          List.iter
            (fun r -> Printf.printf " doc%d(%.3f)" r.Inquery.Ranking.doc r.Inquery.Ranking.score)
            result.Core.Engine.ranked;
          print_newline ())
        queries;
      print_newline ())
    sessions;

  (* 4. The two subsystems return byte-identical records. *)
  let agree = ref true in
  Inquery.Dictionary.iter dict (fun entry ->
      let fetch store = store.Core.Index_store.fetch entry in
      match List.map fetch sessions with
      | [ Some a; Some b ] -> if not (Bytes.equal a b) then agree := false
      | _ -> agree := false);
  Printf.printf "Backends agree on all %d inverted lists: %b\n" (Inquery.Dictionary.size dict)
    !agree
