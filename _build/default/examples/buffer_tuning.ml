(* Buffer tuning studies: the Figure 3 sweep on a scaled TIPSTER, plus
   two ablations the paper suggests as future work — replacement-policy
   comparison and the reservation optimisation's effect.

   Run with: dune exec examples/buffer_tuning.exe *)

let () =
  let model = Collections.Presets.tipster ~scale:0.1 () in
  Printf.printf "Building %s (scaled): %d documents...\n%!" model.Collections.Docmodel.name
    model.Collections.Docmodel.n_docs;
  let prepared = Core.Experiment.prepare model in
  let spec = List.assoc "1" (Collections.Presets.query_sets model) in
  let queries = Collections.Querygen.generate model spec in
  let default = Core.Experiment.default_buffers prepared in

  (* Figure 3: hit rate vs large-object buffer size. *)
  Printf.printf "\nLarge-object buffer sweep (Figure 3):\n";
  Printf.printf "  %14s  %8s\n" "buffer (KB)" "hit rate";
  let sizes =
    List.map (fun k -> max 8192 (k * default.Core.Buffer_sizing.large / 8)) [ 1; 2; 4; 8; 16; 32 ]
    |> List.sort_uniq compare
  in
  List.iter
    (fun (size, rate) -> Printf.printf "  %14d  %8.2f\n" (size / 1024) rate)
    (Core.Experiment.large_buffer_sweep prepared ~queries ~sizes);

  (* Ablation 1: replacement policy. *)
  Printf.printf "\nReplacement policy ablation (same buffers, Mneme cache):\n";
  Printf.printf "  %-6s  %10s  %8s  %10s\n" "policy" "accesses" "A" "KB read";
  List.iter
    (fun (name, policy) ->
      let r = Core.Experiment.run_query_set ~policy prepared Core.Experiment.Mneme_cache ~queries in
      Printf.printf "  %-6s  %10d  %8.2f  %10.0f\n" name r.Core.Experiment.file_accesses
        (Core.Experiment.accesses_per_lookup r)
        r.Core.Experiment.kbytes_read)
    [ ("lru", Mneme.Buffer_pool.Lru); ("fifo", Mneme.Buffer_pool.Fifo);
      ("clock", Mneme.Buffer_pool.Clock) ];

  (* Ablation 2: how much buffer the no-cache configuration gives up. *)
  Printf.printf "\nConfiguration comparison:\n";
  Printf.printf "  %-16s  %8s  %8s  %10s  %10s\n" "version" "I" "A" "KB read" "sys+io s";
  List.iter
    (fun version ->
      let r = Core.Experiment.run_query_set prepared version ~queries in
      Printf.printf "  %-16s  %8d  %8.2f  %10.0f  %10.2f\n"
        (Core.Experiment.version_name r.Core.Experiment.version)
        r.Core.Experiment.io_inputs
        (Core.Experiment.accesses_per_lookup r)
        r.Core.Experiment.kbytes_read r.Core.Experiment.sys_io_s)
    [ Core.Experiment.Btree; Core.Experiment.Mneme_no_cache; Core.Experiment.Mneme_cache ]
