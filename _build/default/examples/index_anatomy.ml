(* Anatomy of an inverted file: reproduce the paper's Section 2 analysis
   on a synthetic collection — the Zipf size distribution (Figure 1),
   the three-way object partition, and what each Mneme pool ends up
   holding.

   Run with: dune exec examples/index_anatomy.exe *)

let () =
  let model = Collections.Presets.cacm () in
  Printf.printf "Collection: %s (%d documents)\n%!" model.Collections.Docmodel.name
    model.Collections.Docmodel.n_docs;
  let prepared = Core.Experiment.prepare model in

  (* Table 1 style statistics. *)
  Printf.printf "\nCollection statistics:\n";
  Printf.printf "  raw collection size : %d KB\n"
    (Inquery.Indexer.collection_bytes prepared.Core.Experiment.indexer / 1024);
  Printf.printf "  inverted records    : %d\n" prepared.Core.Experiment.record_count;
  Printf.printf "  B-tree file         : %d KB\n" (prepared.Core.Experiment.btree_size / 1024);
  Printf.printf "  Mneme file          : %d KB\n" (prepared.Core.Experiment.mneme_size / 1024);
  Printf.printf "  largest record      : %d bytes\n" prepared.Core.Experiment.largest_record;

  (* The paper's partition observation. *)
  let small, medium, large = Core.Report.size_census prepared in
  let total = small + medium + large in
  Printf.printf "\nObject partition (thresholds: <=12 bytes small, >4 KB large):\n";
  Printf.printf "  small  %6d records (%4.1f%%) -> 16-byte slots, 4 KB segments\n" small
    (100.0 *. float_of_int small /. float_of_int total);
  Printf.printf "  medium %6d records (%4.1f%%) -> packed 8 KB segments\n" medium
    (100.0 *. float_of_int medium /. float_of_int total);
  Printf.printf "  large  %6d records (%4.1f%%) -> one object per segment\n" large
    (100.0 *. float_of_int large /. float_of_int total);

  (* Figure 1: cumulative size distribution. *)
  Printf.printf "\nCumulative distribution of record sizes (Figure 1):\n";
  Printf.printf "  %12s  %12s  %12s\n" "size (bytes)" "% records" "% file bytes";
  List.iter
    (fun p ->
      Printf.printf "  %12d  %11.1f%%  %11.1f%%\n" p.Core.Report.size
        (100.0 *. p.Core.Report.records_le)
        (100.0 *. p.Core.Report.bytes_le))
    (Core.Report.fig1 ~points:12 prepared);

  (* Table 2: what the heuristics allocate for this collection. *)
  let b = Core.Experiment.default_buffers prepared in
  Printf.printf "\nBuffer sizing heuristics (Table 2):\n";
  Printf.printf "  small  buffer: %5.1f KB (three 4 KB segments)\n"
    (float_of_int b.Core.Buffer_sizing.small /. 1024.0);
  Printf.printf "  medium buffer: %5.1f KB (max of 9%% of large, three segments)\n"
    (float_of_int b.Core.Buffer_sizing.medium /. 1024.0);
  Printf.printf "  large  buffer: %5.1f KB (three times the largest record)\n"
    (float_of_int b.Core.Buffer_sizing.large /. 1024.0);

  (* A couple of concrete records, decoded. *)
  Printf.printf "\nSample inverted lists:\n";
  let dict = prepared.Core.Experiment.dict in
  let engine = Core.Experiment.open_engine prepared Core.Experiment.Mneme_cache in
  ignore engine;
  let store =
    Core.Mneme_backend.open_session prepared.Core.Experiment.vfs
      ~file:prepared.Core.Experiment.mneme_file ~buffers:b
  in
  List.iter
    (fun rank ->
      let term = Collections.Synth.core_term ~rank in
      match Inquery.Dictionary.find dict term with
      | None -> ()
      | Some entry -> (
        match store.Core.Index_store.fetch entry with
        | None -> ()
        | Some record ->
          let df, cf = Inquery.Postings.stats record in
          Printf.printf "  %-8s rank %-6d df=%-6d cf=%-7d record=%d bytes\n" term rank df cf
            (Bytes.length record)))
    [ 1; 10; 100; 1000 ]
