(* Calibration check: do the synthetic collections actually obey the
   informetric laws the paper's analysis rests on?  (Zipf's
   rank-frequency law drives Figure 1; the hapax population motivates
   the small-object pool; Heaps-style vocabulary growth governs
   dictionary size.)

   Run with: dune exec examples/calibration.exe *)

let () =
  let model = Collections.Presets.cacm () in
  Printf.printf "Analysing %s (%d documents)...\n%!" model.Collections.Docmodel.name
    model.Collections.Docmodel.n_docs;
  let indexer = Collections.Synth.build_index model in

  let p = Collections.Analysis.term_profile indexer in
  Printf.printf "\nTerm profile:\n";
  Printf.printf "  distinct terms      %d\n" p.Collections.Analysis.distinct_terms;
  Printf.printf "  hapax legomena      %d (%.1f%% of the vocabulary)\n"
    p.Collections.Analysis.hapax_terms
    (100.0 *. Collections.Analysis.hapax_fraction p);
  Printf.printf "  total occurrences   %d\n" p.Collections.Analysis.total_occurrences;
  Printf.printf "  most frequent term  %d occurrences\n" p.Collections.Analysis.top_frequency;

  let s, r2 = Collections.Analysis.zipf_fit ~ranks:200 indexer in
  Printf.printf "\nZipf rank-frequency fit over the top 200 terms:\n";
  Printf.printf "  exponent s = %.3f (model draws with s = %.2f), r^2 = %.4f\n" s
    model.Collections.Docmodel.zipf_s r2;
  Printf.printf "  (Zipf: 'there is a constant ... approximately equal to the product\n";
  Printf.printf "   of any given term's size and rank order number')\n";

  Printf.printf "\nVocabulary growth (Heaps' law):\n";
  Printf.printf "  %12s  %10s\n" "tokens seen" "distinct";
  let curve = Collections.Analysis.vocabulary_growth model ~samples:10 in
  List.iter (fun (tokens, distinct) -> Printf.printf "  %12d  %10d\n" tokens distinct) curve;
  let beta, hr2 = Collections.Analysis.heaps_fit curve in
  Printf.printf "  Heaps exponent beta = %.3f (r^2 = %.4f)\n" beta hr2;

  (* The consequence the paper builds on: half the inverted lists are
     tiny, and they carry almost none of the data. *)
  let sizes =
    Inquery.Indexer.to_records indexer |> Seq.map (fun (_, r) -> Bytes.length r) |> List.of_seq
  in
  let records = List.length sizes in
  let small = List.length (List.filter (fun n -> n <= 12) sizes) in
  let bytes = List.fold_left ( + ) 0 sizes in
  let small_bytes = List.fold_left (fun a n -> if n <= 12 then a + n else a) 0 sizes in
  Printf.printf "\nConsequence for the inverted file:\n";
  Printf.printf "  records <= 12 bytes: %.1f%% of records, %.1f%% of record bytes\n"
    (100.0 *. float_of_int small /. float_of_int records)
    (100.0 *. float_of_int small_bytes /. float_of_int bytes);
  Printf.printf "  (the paper: 'approximately 50%% of the inverted lists are 12 bytes or\n";
  Printf.printf "   less' yet 'represent less than 1%% of the total file size')\n"
