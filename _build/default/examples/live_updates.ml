(* Dynamic collection maintenance — the capability the paper's systems
   lacked ("addition or deletion of a single document ... requires the
   entire document collection to be re-indexed"), built on the Mneme
   features the paper highlights as enablers: object relocation and
   inter-object references (chained large objects).

   Run with: dune exec examples/live_updates.exe *)

let () =
  let vfs = Vfs.create () in
  let live =
    Core.Live_index.create_mneme ~stopwords:Inquery.Stopwords.default ~stem:true vfs
      ~file:"live.mneme" ()
  in

  (* 1. Documents arrive one at a time and are immediately searchable. *)
  print_endline "Adding documents incrementally:";
  let add text =
    let id = Core.Live_index.add_document live text in
    Printf.printf "  doc %d: %s\n" id text;
    id
  in
  let _d0 = add "The B-tree package stores inverted lists in a keyed file." in
  let _d1 = add "Mneme groups objects into physical segments for transfer." in
  let _d2 = add "Buffer replacement uses LRU with a reservation optimization." in
  let d3 = add "Segment transfer costs dominate lookups in large collections." in

  let show query =
    Printf.printf "  %-28s ->" query;
    List.iter
      (fun r -> Printf.printf " doc%d(%.3f)" r.Inquery.Ranking.doc r.Inquery.Ranking.score)
      (Core.Live_index.search live query);
    print_newline ()
  in
  print_endline "\nSearching the live index:";
  show "segment transfer";
  show "#phrase( inverted lists )";

  (* 2. Deletion punches the document out of every inverted list. *)
  Printf.printf "\nDeleting doc %d...\n" d3;
  ignore (Core.Live_index.delete_document live d3);
  show "segment transfer";

  (* 3. Updates strand space (the paper's space-management problem). *)
  let bulk_add i =
    ignore
      (Core.Live_index.add_document live
         (Printf.sprintf "update number %d mentions segments and buffers again" i))
  in
  for i = 0 to 39 do
    bulk_add i
  done;
  Core.Live_index.flush live;
  for i = 40 to 79 do
    bulk_add i
  done;
  let s = Core.Live_index.space live in
  Printf.printf "\nAfter 80 more updates: file %d KB, stranded %d bytes (%.1f%%)\n"
    (s.Core.Live_index.file_bytes / 1024)
    s.Core.Live_index.reclaimable_bytes
    (100.0
    *. float_of_int s.Core.Live_index.reclaimable_bytes
    /. float_of_int (max 1 s.Core.Live_index.file_bytes));
  Printf.printf "Documents now indexed: %d (avg %.1f terms)\n"
    (Core.Live_index.document_count live)
    (Core.Live_index.avg_doc_length live);

  (* 4. Chained large objects: incremental retrieval and append-only
        growth via inter-object references. *)
  print_endline "\nChained large objects (Mneme inter-object references):";
  let store = Mneme.Store.create vfs "chains.mneme" in
  let pool = Mneme.Store.add_pool store Mneme.Policy.medium in
  Mneme.Store.attach_buffer pool (Mneme.Buffer_pool.create ~name:"medium" ~capacity:262144 ());
  let payload = Bytes.init 50_000 (fun i -> Char.chr (65 + (i mod 26))) in
  let head = Mneme.Chain.store ~pool ~chunk_payload:4000 payload in
  Printf.printf "  stored 50 KB as %d chunks (head oid %d)\n"
    (Mneme.Chain.chunk_count store head)
    head;
  Mneme.Store.finalize store;
  let counters0 = Vfs.counters vfs in
  let prefix = Mneme.Chain.fetch_prefix store head ~len:1000 in
  let counters1 = Vfs.counters vfs in
  Printf.printf "  fetched a 1 KB prefix (%d bytes) reading only %d file bytes\n"
    (Bytes.length prefix)
    (counters1.Vfs.bytes_read - counters0.Vfs.bytes_read);
  Mneme.Chain.append store ~pool ~chunk_payload:4000 head (Bytes.make 2500 'z');
  Printf.printf "  appended 2.5 KB; chain is now %d bytes in %d chunks\n"
    (Mneme.Chain.length store head)
    (Mneme.Chain.chunk_count store head)
