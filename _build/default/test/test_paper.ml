(* The paper-table generators end to end at smoke scale. *)

let ctx = lazy (Core.Paper.create_ctx ~scale:0.02 ())

let rendered table = Util.Tables.render table

let test_table1_rows () =
  let out = rendered (Core.Paper.table1 (Lazy.force ctx)) in
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " present") true (Str_find.contains out name))
    [ "cacm"; "legal"; "tipster1"; "tipster" ]

let test_table2_heuristics_visible () =
  let out = rendered (Core.Paper.table2 (Lazy.force ctx)) in
  (* Small buffer is always three 4 KB segments. *)
  Alcotest.(check bool) "12.0 KB small" true (Str_find.contains out "12.0")

let test_table3_improvement_positive () =
  let ctx = Lazy.force ctx in
  ignore (Core.Paper.table3 ctx);
  List.iter
    (fun (collection, sets) ->
      List.iter
        (fun set ->
          let bt = Core.Paper.run ctx collection set Core.Experiment.Btree in
          let mc = Core.Paper.run ctx collection set Core.Experiment.Mneme_cache in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s improvement" collection set)
            true
            (mc.Core.Experiment.wall_s <= bt.Core.Experiment.wall_s))
        sets)
    (Core.Paper.collections_with_sets ctx)

let test_table5_a_ordering () =
  let ctx = Lazy.force ctx in
  ignore (Core.Paper.table5 ctx);
  List.iter
    (fun (collection, sets) ->
      List.iter
        (fun set ->
          let a v = Core.Experiment.accesses_per_lookup (Core.Paper.run ctx collection set v) in
          let bt = a Core.Experiment.Btree in
          let mn = a Core.Experiment.Mneme_no_cache in
          let mc = a Core.Experiment.Mneme_cache in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s A ordering (%.2f %.2f %.2f)" collection set bt mn mc)
            true
            (bt >= 1.5 && mn < bt && mc <= mn))
        sets)
    (Core.Paper.collections_with_sets ctx)

let test_runs_cached () =
  let ctx = Lazy.force ctx in
  let r1 = Core.Paper.run ctx "cacm" "1" Core.Experiment.Btree in
  let r2 = Core.Paper.run ctx "cacm" "1" Core.Experiment.Btree in
  Alcotest.(check bool) "same run object" true (r1 == r2)

let test_queries_deterministic () =
  let ctx = Lazy.force ctx in
  Alcotest.(check bool) "same list" true
    (Core.Paper.queries ctx "legal" "2" = Core.Paper.queries ctx "legal" "2");
  Alcotest.(check int) "fifty queries" 50 (List.length (Core.Paper.queries ctx "legal" "2"))

let test_unknown_collection () =
  let ctx = Lazy.force ctx in
  Alcotest.(check bool) "raises" true
    (match Core.Paper.prepared ctx "web" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad set" true
    (match Core.Paper.queries ctx "cacm" "9" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_fig_tables_render () =
  let ctx = Lazy.force ctx in
  List.iter
    (fun table ->
      Alcotest.(check bool) "non-empty" true (String.length (rendered table) > 40))
    [ Core.Paper.fig1 ctx; Core.Paper.fig2 ctx; Core.Paper.table6 ctx ]

let test_fig3_custom_sizes () =
  let ctx = Lazy.force ctx in
  let out = rendered (Core.Paper.fig3 ~sizes:[ 16384; 65536 ] ctx) in
  Alcotest.(check bool) "16 KB row" true (Str_find.contains out "16");
  Alcotest.(check bool) "64 KB row" true (Str_find.contains out "64")

let test_scale_accessor () =
  Alcotest.(check (float 1e-9)) "scale" 0.02 (Core.Paper.scale (Lazy.force ctx))

let suite =
  [
    Alcotest.test_case "table1 rows" `Quick test_table1_rows;
    Alcotest.test_case "table2 heuristics" `Quick test_table2_heuristics_visible;
    Alcotest.test_case "table3 improvement" `Quick test_table3_improvement_positive;
    Alcotest.test_case "table5 A ordering" `Quick test_table5_a_ordering;
    Alcotest.test_case "runs cached" `Quick test_runs_cached;
    Alcotest.test_case "queries deterministic" `Quick test_queries_deterministic;
    Alcotest.test_case "unknown collection" `Quick test_unknown_collection;
    Alcotest.test_case "fig tables render" `Quick test_fig_tables_render;
    Alcotest.test_case "fig3 custom sizes" `Quick test_fig3_custom_sizes;
    Alcotest.test_case "scale accessor" `Quick test_scale_accessor;
  ]
