(* Elias and Golomb codes. *)

let schemes = [ Util.Codes.Gamma; Util.Codes.Delta_code; Util.Codes.Golomb 1;
                Util.Codes.Golomb 3; Util.Codes.Golomb 8; Util.Codes.Golomb 100 ]

let test_known_gamma_codes () =
  (* gamma(1) = "1", gamma(2) = "010", gamma(5) = "00101". *)
  let code v =
    let w = Util.Bitio.Writer.create () in
    Util.Codes.encode w Util.Codes.Gamma v;
    (Util.Bitio.Writer.bit_length w, Util.Bitio.Writer.to_bytes w)
  in
  let bits1, b1 = code 1 in
  Alcotest.(check int) "gamma(1) is 1 bit" 1 bits1;
  Alcotest.(check int) "gamma(1) = 1" 0b10000000 (Char.code (Bytes.get b1 0));
  let bits5, b5 = code 5 in
  Alcotest.(check int) "gamma(5) is 5 bits" 5 bits5;
  Alcotest.(check int) "gamma(5) = 00101" 0b00101000 (Char.code (Bytes.get b5 0))

let test_roundtrip_each_scheme () =
  let values = [ 1; 2; 3; 4; 5; 7; 8; 100; 1000; 65536; 1_000_000 ] in
  List.iter
    (fun scheme ->
      let b = Util.Codes.encode_list scheme values in
      Alcotest.(check (list int))
        (Util.Codes.scheme_name scheme)
        values
        (Util.Codes.decode_list scheme b ~count:(List.length values)))
    schemes

let test_bit_size_matches_encoding () =
  List.iter
    (fun scheme ->
      List.iter
        (fun v ->
          let w = Util.Bitio.Writer.create () in
          Util.Codes.encode w scheme v;
          Alcotest.(check int)
            (Printf.sprintf "%s size of %d" (Util.Codes.scheme_name scheme) v)
            (Util.Bitio.Writer.bit_length w) (Util.Codes.bit_size scheme v))
        [ 1; 2; 6; 17; 300; 12345 ])
    schemes

let test_gamma_beats_binary_for_small () =
  (* Small gaps (common-term postings) code in very few bits. *)
  Alcotest.(check bool) "gamma(1)" true (Util.Codes.bit_size Util.Codes.Gamma 1 = 1);
  Alcotest.(check bool) "gamma(3) <= 3 bits" true (Util.Codes.bit_size Util.Codes.Gamma 3 <= 3)

let test_delta_beats_gamma_for_large () =
  let v = 1_000_000 in
  Alcotest.(check bool) "delta smaller asymptotically" true
    (Util.Codes.bit_size Util.Codes.Delta_code v < Util.Codes.bit_size Util.Codes.Gamma v)

let test_golomb_parameter_rule () =
  (* A rare term (df 10 of 10 000 docs) gets a large b; a ubiquitous term
     gets b = 1 (pure unary, near-optimal for gap 1). *)
  Alcotest.(check bool) "rare" true (Util.Codes.golomb_parameter ~n_docs:10_000 ~df:10 > 300);
  Alcotest.(check int) "ubiquitous" 1 (Util.Codes.golomb_parameter ~n_docs:10_000 ~df:10_000);
  Alcotest.(check int) "df 0 safe" 1 (Util.Codes.golomb_parameter ~n_docs:10_000 ~df:0)

let test_validation () =
  let w = Util.Bitio.Writer.create () in
  Alcotest.(check bool) "zero rejected" true
    (match Util.Codes.encode w Util.Codes.Gamma 0 with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad golomb parameter" true
    (match Util.Codes.encode w (Util.Codes.Golomb 0) 5 with
    | () -> false
    | exception Invalid_argument _ -> true)

let prop_roundtrip =
  QCheck.Test.make ~name:"codes roundtrip random positives" ~count:300
    QCheck.(pair (int_range 0 5) (list_of_size (QCheck.Gen.int_range 1 50) (int_range 1 100_000)))
    (fun (si, values) ->
      let scheme = List.nth schemes si in
      let b = Util.Codes.encode_list scheme values in
      Util.Codes.decode_list scheme b ~count:(List.length values) = values)

let prop_golomb_gap_compression =
  (* Coding a term's doc gaps with the WMB parameter never does worse
     than 32-bit binary for realistic dfs. *)
  QCheck.Test.make ~name:"golomb beats raw ints on gaps" ~count:100
    QCheck.(int_range 2 5000)
    (fun df ->
      let n_docs = 10_000 in
      let b = Util.Codes.golomb_parameter ~n_docs ~df in
      let avg_gap = max 1 (n_docs / df) in
      Util.Codes.bit_size (Util.Codes.Golomb b) avg_gap < 32)

let suite =
  [
    Alcotest.test_case "known gamma codes" `Quick test_known_gamma_codes;
    Alcotest.test_case "roundtrip each scheme" `Quick test_roundtrip_each_scheme;
    Alcotest.test_case "bit_size matches" `Quick test_bit_size_matches_encoding;
    Alcotest.test_case "gamma small values" `Quick test_gamma_beats_binary_for_small;
    Alcotest.test_case "delta large values" `Quick test_delta_beats_gamma_for_large;
    Alcotest.test_case "golomb parameter rule" `Quick test_golomb_parameter_rule;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_golomb_gap_compression;
  ]
