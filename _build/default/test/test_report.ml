(* Figure data series. *)

let prepared =
  lazy
    (Core.Experiment.prepare
       (Collections.Docmodel.make ~name:"rep" ~n_docs:400 ~core_vocab:1500 ~mean_doc_len:70.0
          ~hapax_prob:0.02 ~seed:29 ()))

let test_fig1_monotone () =
  let pts = Core.Report.fig1 (Lazy.force prepared) in
  Alcotest.(check bool) "non-empty" true (List.length pts > 5);
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "sizes ascend" true (a.Core.Report.size < b.Core.Report.size);
      Alcotest.(check bool) "records cumulative" true
        (a.Core.Report.records_le <= b.Core.Report.records_le);
      Alcotest.(check bool) "bytes cumulative" true
        (a.Core.Report.bytes_le <= b.Core.Report.bytes_le);
      check rest
    | _ -> ()
  in
  check pts;
  let last = List.nth pts (List.length pts - 1) in
  Alcotest.(check (float 1e-9)) "records reach 1" 1.0 last.Core.Report.records_le;
  Alcotest.(check (float 1e-9)) "bytes reach 1" 1.0 last.Core.Report.bytes_le

let test_fig1_small_records_shape () =
  (* The paper's observation: many records are tiny, but they carry a
     tiny share of the bytes. *)
  let pts = Core.Report.fig1 (Lazy.force prepared) in
  match List.find_opt (fun p -> p.Core.Report.size >= 12 && p.Core.Report.size < 40) pts with
  | Some p ->
    Alcotest.(check bool) "records share exceeds bytes share" true
      (p.Core.Report.records_le > p.Core.Report.bytes_le)
  | None -> Alcotest.fail "no small-size point"

let test_fig2_counts_uses () =
  let queries = [ "ba be"; "ba"; "#phrase( ba bi )" ] in
  let pts = Core.Report.fig2 (Lazy.force prepared) ~queries in
  let total = List.fold_left (fun acc p -> acc + p.Core.Report.uses) 0 pts in
  (* ba x3, be x1, bi x1 — all in vocabulary. *)
  Alcotest.(check int) "five uses" 5 total

let test_fig2_ignores_unparseable_and_oov () =
  let pts = Core.Report.fig2 (Lazy.force prepared) ~queries:[ "#and("; "zqx" ] in
  let total = List.fold_left (fun acc p -> acc + p.Core.Report.uses) 0 pts in
  Alcotest.(check int) "nothing counted" 0 total

let test_small_fraction_near_half () =
  let f = Core.Report.small_fraction (Lazy.force prepared) in
  (* The synthetic collections reproduce the ~50% observation loosely. *)
  Alcotest.(check bool) (Printf.sprintf "fraction %.2f" f) true (f > 0.2 && f < 0.8)

let test_size_census_sums () =
  let p = Lazy.force prepared in
  let s, m, l = Core.Report.size_census p in
  Alcotest.(check int) "sums to record count" p.Core.Experiment.record_count (s + m + l)

let suite =
  [
    Alcotest.test_case "fig1 monotone" `Quick test_fig1_monotone;
    Alcotest.test_case "fig1 small records shape" `Quick test_fig1_small_records_shape;
    Alcotest.test_case "fig2 counts uses" `Quick test_fig2_counts_uses;
    Alcotest.test_case "fig2 robust" `Quick test_fig2_ignores_unparseable_and_oov;
    Alcotest.test_case "small fraction" `Quick test_small_fraction_near_half;
    Alcotest.test_case "size census sums" `Quick test_size_census_sums;
  ]
