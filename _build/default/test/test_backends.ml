(* The two index backends agree on every record and expose the
   interface contracts the engine depends on. *)

let tiny_model =
  Collections.Docmodel.make ~name:"bk" ~n_docs:300 ~core_vocab:800 ~mean_doc_len:60.0
    ~hapax_prob:0.02 ~seed:17 ()

let build () =
  let vfs = Vfs.create () in
  let ix = Collections.Synth.build_index tiny_model in
  let dict = Inquery.Indexer.dictionary ix in
  let tree = Core.Btree_backend.build vfs ~file:"x.btree" (Inquery.Indexer.to_records ix) in
  Btree.flush tree;
  ignore
    (Core.Mneme_backend.build vfs ~file:"x.mneme" ~dict (Inquery.Indexer.to_records ix));
  (vfs, ix, dict)

let default_buffers = Core.Buffer_sizing.compute ~largest_record:50_000 ()

let test_backends_agree () =
  let vfs, ix, dict = build () in
  let bt = Core.Btree_backend.open_session vfs ~file:"x.btree" in
  let mn = Core.Mneme_backend.open_session vfs ~file:"x.mneme" ~buffers:default_buffers in
  Inquery.Dictionary.iter dict (fun entry ->
      let a = bt.Core.Index_store.fetch entry in
      let b = mn.Core.Index_store.fetch entry in
      match (a, b) with
      | Some ra, Some rb ->
        if not (Bytes.equal ra rb) then
          Alcotest.fail ("records differ for " ^ entry.Inquery.Dictionary.term)
      | _ -> Alcotest.fail ("record missing for " ^ entry.Inquery.Dictionary.term));
  Alcotest.(check bool) "every term checked" true (Inquery.Indexer.term_count ix > 0)

let test_names () =
  let vfs, _, _ = build () in
  let bt = Core.Btree_backend.open_session vfs ~file:"x.btree" in
  Alcotest.(check string) "btree" "btree" bt.Core.Index_store.name;
  let mn = Core.Mneme_backend.open_session vfs ~file:"x.mneme" ~buffers:default_buffers in
  Alcotest.(check string) "cache" "mneme-cache" mn.Core.Index_store.name;
  let mn0 =
    Core.Mneme_backend.open_session vfs ~file:"x.mneme" ~buffers:Core.Buffer_sizing.no_cache
  in
  Alcotest.(check string) "nocache" "mneme-nocache" mn0.Core.Index_store.name

let test_locators_stored_in_dictionary () =
  let _, _, dict = build () in
  (* The integration point: every term's Mneme object id lives in the
     hash dictionary entry. *)
  Inquery.Dictionary.iter dict (fun entry ->
      if entry.Inquery.Dictionary.locator < 0 then
        Alcotest.fail ("no locator for " ^ entry.Inquery.Dictionary.term))

let test_buffer_stats_exposed () =
  let vfs, _, dict = build () in
  let mn = Core.Mneme_backend.open_session vfs ~file:"x.mneme" ~buffers:default_buffers in
  let entry = Option.get (Inquery.Dictionary.find_by_id dict 0) in
  ignore (mn.Core.Index_store.fetch entry);
  let stats = mn.Core.Index_store.buffer_stats () in
  Alcotest.(check (list string)) "three pools" [ "small"; "medium"; "large" ]
    (List.map fst stats);
  let total_refs =
    List.fold_left (fun acc (_, s) -> acc + s.Mneme.Buffer_pool.refs) 0 stats
  in
  Alcotest.(check int) "one ref" 1 total_refs;
  mn.Core.Index_store.reset_buffer_stats ();
  let total_refs' =
    List.fold_left
      (fun acc (_, s) -> acc + s.Mneme.Buffer_pool.refs)
      0
      (mn.Core.Index_store.buffer_stats ())
  in
  Alcotest.(check int) "reset" 0 total_refs'

let test_btree_has_no_buffers () =
  let vfs, _, _ = build () in
  let bt = Core.Btree_backend.open_session vfs ~file:"x.btree" in
  Alcotest.(check int) "no buffers" 0 (List.length (bt.Core.Index_store.buffer_stats ()));
  (* reserve is a no-op that still returns a working release thunk *)
  let release = bt.Core.Index_store.reserve [] in
  release ()

let test_reservation_on_mneme () =
  let vfs, _, dict = build () in
  let mn = Core.Mneme_backend.open_session vfs ~file:"x.mneme" ~buffers:default_buffers in
  let entry = Option.get (Inquery.Dictionary.find_by_id dict 0) in
  ignore (mn.Core.Index_store.fetch entry);
  let release = mn.Core.Index_store.reserve [ entry ] in
  release ();
  (* Double release must be harmless. *)
  release ()

let test_file_sizes () =
  let vfs, _, _ = build () in
  let bt = Core.Btree_backend.open_session vfs ~file:"x.btree" in
  let mn = Core.Mneme_backend.open_session vfs ~file:"x.mneme" ~buffers:default_buffers in
  Alcotest.(check bool) "btree file" true (bt.Core.Index_store.file_size () > 0);
  Alcotest.(check bool) "mneme file" true (mn.Core.Index_store.file_size () > 0)

let test_fetch_unset_locator () =
  let vfs, _, _ = build () in
  let mn = Core.Mneme_backend.open_session vfs ~file:"x.mneme" ~buffers:default_buffers in
  let d = Inquery.Dictionary.create () in
  let orphan = Inquery.Dictionary.intern d "orphan" in
  Alcotest.(check bool) "no locator -> None" true (mn.Core.Index_store.fetch orphan = None)

let test_replacement_policy_option () =
  let vfs, _, dict = build () in
  let mn =
    Core.Mneme_backend.open_session ~policy:Mneme.Buffer_pool.Fifo vfs ~file:"x.mneme"
      ~buffers:default_buffers
  in
  let entry = Option.get (Inquery.Dictionary.find_by_id dict 0) in
  ignore (mn.Core.Index_store.fetch entry);
  List.iter
    (fun (_, _s) -> ())
    (mn.Core.Index_store.buffer_stats ())

let suite =
  [
    Alcotest.test_case "backends agree" `Quick test_backends_agree;
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "locators in dictionary" `Quick test_locators_stored_in_dictionary;
    Alcotest.test_case "buffer stats exposed" `Quick test_buffer_stats_exposed;
    Alcotest.test_case "btree has no buffers" `Quick test_btree_has_no_buffers;
    Alcotest.test_case "reservation on mneme" `Quick test_reservation_on_mneme;
    Alcotest.test_case "file sizes" `Quick test_file_sizes;
    Alcotest.test_case "fetch unset locator" `Quick test_fetch_unset_locator;
    Alcotest.test_case "replacement policy option" `Quick test_replacement_policy_option;
  ]
