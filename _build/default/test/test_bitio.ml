(* Bit-granular I/O. *)

let test_single_bits () =
  let w = Util.Bitio.Writer.create () in
  List.iter (Util.Bitio.Writer.bit w) [ true; false; true; true ];
  Alcotest.(check int) "bit length" 4 (Util.Bitio.Writer.bit_length w);
  let b = Util.Bitio.Writer.to_bytes w in
  Alcotest.(check int) "one byte padded" 1 (Bytes.length b);
  Alcotest.(check int) "msb first, zero padded" 0b10110000 (Char.code (Bytes.get b 0));
  let r = Util.Bitio.Reader.create b in
  Alcotest.(check (list bool)) "read back" [ true; false; true; true ]
    (List.init 4 (fun _ -> Util.Bitio.Reader.bit r))

let test_bits_roundtrip () =
  let w = Util.Bitio.Writer.create () in
  Util.Bitio.Writer.bits w ~value:0b1011 ~width:4;
  Util.Bitio.Writer.bits w ~value:1023 ~width:10;
  Util.Bitio.Writer.bits w ~value:0 ~width:0;
  Util.Bitio.Writer.bits w ~value:5 ~width:9;
  let r = Util.Bitio.Reader.create (Util.Bitio.Writer.to_bytes w) in
  Alcotest.(check int) "4-bit" 0b1011 (Util.Bitio.Reader.bits r ~width:4);
  Alcotest.(check int) "10-bit" 1023 (Util.Bitio.Reader.bits r ~width:10);
  Alcotest.(check int) "0-bit" 0 (Util.Bitio.Reader.bits r ~width:0);
  Alcotest.(check int) "9-bit" 5 (Util.Bitio.Reader.bits r ~width:9)

let test_unary () =
  let w = Util.Bitio.Writer.create () in
  List.iter (Util.Bitio.Writer.unary w) [ 0; 3; 11 ];
  let r = Util.Bitio.Reader.create (Util.Bitio.Writer.to_bytes w) in
  Alcotest.(check (list int)) "unary" [ 0; 3; 11 ]
    (List.init 3 (fun _ -> Util.Bitio.Reader.unary r))

let test_bounds () =
  let w = Util.Bitio.Writer.create () in
  Alcotest.(check bool) "wide value rejected" true
    (match Util.Bitio.Writer.bits w ~value:4 ~width:2 with
    | () -> false
    | exception Invalid_argument _ -> true);
  let r = Util.Bitio.Reader.create (Bytes.make 1 '\255') in
  ignore (Util.Bitio.Reader.bits r ~width:8);
  Alcotest.(check bool) "read past end" true
    (match Util.Bitio.Reader.bit r with _ -> false | exception Invalid_argument _ -> true)

let test_reader_accounting () =
  let r = Util.Bitio.Reader.create (Bytes.make 2 '\000') in
  Alcotest.(check int) "remaining" 16 (Util.Bitio.Reader.remaining r);
  ignore (Util.Bitio.Reader.bits r ~width:5);
  Alcotest.(check int) "consumed" 5 (Util.Bitio.Reader.bits_consumed r);
  Alcotest.(check int) "remaining after" 11 (Util.Bitio.Reader.remaining r)

let test_of_sub () =
  let b = Bytes.of_string "\x00\xf0\x00" in
  let r = Util.Bitio.Reader.of_sub b ~pos:1 ~len:1 in
  Alcotest.(check int) "window" 0xf0 (Util.Bitio.Reader.bits r ~width:8);
  Alcotest.(check bool) "window end enforced" true
    (match Util.Bitio.Reader.bit r with _ -> false | exception Invalid_argument _ -> true)

let prop_roundtrip =
  QCheck.Test.make ~name:"bitio bits roundtrip" ~count:300
    QCheck.(list (pair (int_range 0 30) (int_range 0 1_000_000)))
    (fun pairs ->
      let pairs = List.map (fun (w, v) -> (max 20 w, v land ((1 lsl max 20 w) - 1))) pairs in
      let w = Util.Bitio.Writer.create () in
      List.iter (fun (width, value) -> Util.Bitio.Writer.bits w ~value ~width) pairs;
      let r = Util.Bitio.Reader.create (Util.Bitio.Writer.to_bytes w) in
      List.for_all (fun (width, value) -> Util.Bitio.Reader.bits r ~width = value) pairs)

let suite =
  [
    Alcotest.test_case "single bits" `Quick test_single_bits;
    Alcotest.test_case "bits roundtrip" `Quick test_bits_roundtrip;
    Alcotest.test_case "unary" `Quick test_unary;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "reader accounting" `Quick test_reader_accounting;
    Alcotest.test_case "of_sub" `Quick test_of_sub;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
