(* Inverted list records: compression roundtrips, folds, updates. *)

let sample = [ (3, [ 0; 5; 9 ]); (7, [ 2 ]); (100, [ 1; 2; 3; 4 ]) ]

let test_encode_decode () =
  let b = Inquery.Postings.encode sample in
  let decoded = Inquery.Postings.decode b in
  Alcotest.(check int) "df" 3 (List.length decoded);
  List.iter2
    (fun (doc, positions) dp ->
      Alcotest.(check int) "doc" doc dp.Inquery.Postings.doc;
      Alcotest.(check (list int)) "positions" positions dp.Inquery.Postings.positions)
    sample decoded

let test_stats () =
  let b = Inquery.Postings.encode sample in
  let df, cf = Inquery.Postings.stats b in
  Alcotest.(check int) "df" 3 df;
  Alcotest.(check int) "cf" 8 cf;
  Alcotest.(check int) "doc_count" 3 (Inquery.Postings.doc_count b)

let test_empty () =
  let b = Inquery.Postings.encode [] in
  Alcotest.(check (pair int int)) "stats" (0, 0) (Inquery.Postings.stats b);
  Alcotest.(check int) "decode" 0 (List.length (Inquery.Postings.decode b))

let test_fold_docs_skips_positions () =
  let b = Inquery.Postings.encode sample in
  let pairs =
    Inquery.Postings.fold_docs b ~init:[] ~f:(fun acc ~doc ~tf -> (doc, tf) :: acc) |> List.rev
  in
  Alcotest.(check (list (pair int int))) "doc/tf" [ (3, 3); (7, 1); (100, 4) ] pairs

let test_validation () =
  let invalid entries =
    match Inquery.Postings.encode entries with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "unsorted docs" true (invalid [ (5, [ 1 ]); (3, [ 1 ]) ]);
  Alcotest.(check bool) "duplicate docs" true (invalid [ (5, [ 1 ]); (5, [ 2 ]) ]);
  Alcotest.(check bool) "empty positions" true (invalid [ (5, []) ]);
  Alcotest.(check bool) "unsorted positions" true (invalid [ (5, [ 3; 1 ]) ])

let test_single_tiny_record () =
  (* A df=1, tf=1 record is just a few bytes: the small-object story. *)
  let b = Inquery.Postings.encode [ (42, [ 7 ]) ] in
  Alcotest.(check bool) "tiny" true (Bytes.length b <= 12);
  Alcotest.(check (pair int int)) "stats" (1, 1) (Inquery.Postings.stats b)

let test_compression_effective () =
  (* Dense ascending docs make gaps small: far fewer bytes than 4 per
     int, which is what the paper's ~60% compression is about. *)
  let entries = List.init 1000 (fun i -> (i * 2, [ i mod 50 ])) in
  let b = Inquery.Postings.encode entries in
  let uncompressed = 1000 * 3 * 4 in
  Alcotest.(check bool) "beats 12 bytes per posting" true (Bytes.length b * 2 < uncompressed)

let test_merge_disjoint () =
  let a = Inquery.Postings.encode [ (1, [ 0 ]); (5, [ 1; 2 ]) ] in
  let b = Inquery.Postings.encode [ (3, [ 9 ]); (7, [ 4 ]) ] in
  let m = Inquery.Postings.merge a b in
  let docs = List.map (fun dp -> dp.Inquery.Postings.doc) (Inquery.Postings.decode m) in
  Alcotest.(check (list int)) "interleaved" [ 1; 3; 5; 7 ] docs;
  let df, cf = Inquery.Postings.stats m in
  Alcotest.(check int) "df" 4 df;
  Alcotest.(check int) "cf" 5 cf

let test_merge_overlap_rejected () =
  let a = Inquery.Postings.encode [ (1, [ 0 ]) ] in
  let b = Inquery.Postings.encode [ (1, [ 1 ]) ] in
  Alcotest.(check bool) "overlap" true
    (match Inquery.Postings.merge a b with _ -> false | exception Invalid_argument _ -> true)

let test_merge_empty () =
  let a = Inquery.Postings.encode [ (1, [ 0 ]) ] in
  let e = Inquery.Postings.encode [] in
  Alcotest.(check int) "merge with empty" 1 (Inquery.Postings.doc_count (Inquery.Postings.merge a e))

let test_remove_docs () =
  let b = Inquery.Postings.encode sample in
  (match Inquery.Postings.remove_docs b (fun doc -> doc = 7) with
  | Some b' ->
    let docs = List.map (fun dp -> dp.Inquery.Postings.doc) (Inquery.Postings.decode b') in
    Alcotest.(check (list int)) "removed" [ 3; 100 ] docs;
    let df, cf = Inquery.Postings.stats b' in
    Alcotest.(check int) "df updated" 2 df;
    Alcotest.(check int) "cf updated" 7 cf
  | None -> Alcotest.fail "should not be empty");
  match Inquery.Postings.remove_docs b (fun _ -> true) with
  | None -> ()
  | Some _ -> Alcotest.fail "should be empty"

let gen_entries =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (pair (int_range 1 20) (list_size (int_range 1 8) (int_range 1 50)))
    |> map (fun raw ->
           let _, entries =
             List.fold_left
               (fun (doc, acc) (doc_gap, pos_gaps) ->
                 let doc = doc + doc_gap in
                 let _, positions =
                   List.fold_left
                     (fun (p, ps) gap ->
                       let p = p + gap in
                       (p, p :: ps))
                     (-1, []) pos_gaps
                 in
                 (doc, (doc, List.rev positions) :: acc))
               (-1, []) raw
           in
           List.rev entries))

let prop_roundtrip =
  QCheck.Test.make ~name:"postings roundtrip" ~count:300 (QCheck.make gen_entries) (fun entries ->
      let b = Inquery.Postings.encode entries in
      let decoded = Inquery.Postings.decode b in
      List.map (fun dp -> (dp.Inquery.Postings.doc, dp.Inquery.Postings.positions)) decoded
      = entries)

let prop_fold_consistent =
  QCheck.Test.make ~name:"fold_docs agrees with decode" ~count:200 (QCheck.make gen_entries)
    (fun entries ->
      let b = Inquery.Postings.encode entries in
      let via_fold =
        Inquery.Postings.fold_docs b ~init:[] ~f:(fun acc ~doc ~tf -> (doc, tf) :: acc)
        |> List.rev
      in
      via_fold = List.map (fun (doc, ps) -> (doc, List.length ps)) entries)

let suite =
  [
    Alcotest.test_case "encode/decode" `Quick test_encode_decode;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "fold_docs" `Quick test_fold_docs_skips_positions;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "tiny record" `Quick test_single_tiny_record;
    Alcotest.test_case "compression effective" `Quick test_compression_effective;
    Alcotest.test_case "merge disjoint" `Quick test_merge_disjoint;
    Alcotest.test_case "merge overlap rejected" `Quick test_merge_overlap_rejected;
    Alcotest.test_case "merge empty" `Quick test_merge_empty;
    Alcotest.test_case "remove docs" `Quick test_remove_docs;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_fold_consistent;
  ]
