(* Signature files: no false negatives, bounded false positives, and
   the bit-sliced organisation's I/O advantage. *)

let corpus =
  [|
    [| "apple"; "banana" |];
    [| "banana"; "cherry" |];
    [| "cherry"; "date"; "elderberry" |];
    [| "apple"; "cherry" |];
    [| "fig" |];
  |]

let docs () = Array.to_seqi corpus

let true_conjunctive terms =
  let out = ref [] in
  Array.iteri
    (fun doc doc_terms ->
      if List.for_all (fun t -> Array.exists (( = ) t) doc_terms) terms then out := doc :: !out)
    corpus;
  List.rev !out

let build ?organisation () =
  let vfs = Vfs.create () in
  (vfs, Inquery.Sigfile.build vfs ~file:"s.sig" ~width:64 ~k:3 ?organisation ~n_docs:5 (docs ()))

let test_no_false_negatives () =
  List.iter
    (fun organisation ->
      let _, sf = build ~organisation () in
      List.iter
        (fun terms ->
          let cands = Inquery.Sigfile.candidates sf terms in
          List.iter
            (fun doc ->
              Alcotest.(check bool)
                (Printf.sprintf "doc %d candidate for %s" doc (String.concat "+" terms))
                true (List.mem doc cands))
            (true_conjunctive terms))
        [ [ "apple" ]; [ "banana" ]; [ "apple"; "cherry" ]; [ "cherry"; "date" ]; [ "fig" ] ])
    [ Inquery.Sigfile.Sequential; Inquery.Sigfile.Bit_sliced ]

let test_organisations_agree () =
  let _, seq = build ~organisation:Inquery.Sigfile.Sequential () in
  let _, sliced = build ~organisation:Inquery.Sigfile.Bit_sliced () in
  List.iter
    (fun terms ->
      Alcotest.(check (list int))
        (String.concat "+" terms)
        (Inquery.Sigfile.candidates seq terms)
        (Inquery.Sigfile.candidates sliced terms))
    [ [ "apple" ]; [ "banana"; "cherry" ]; [ "zzz" ]; [] ]

let test_discrimination () =
  (* With 64 bits and tiny documents, unrelated terms rarely collide:
     "fig" should produce (close to) exactly its own document. *)
  let _, sf = build () in
  let cands = Inquery.Sigfile.candidates sf [ "fig" ] in
  Alcotest.(check bool) "doc 4 present" true (List.mem 4 cands);
  Alcotest.(check bool) "selective" true (List.length cands <= 2)

let test_empty_query_matches_all () =
  let _, sf = build () in
  Alcotest.(check (list int)) "all docs" [ 0; 1; 2; 3; 4 ] (Inquery.Sigfile.candidates sf [])

let test_term_bits_deterministic () =
  let _, sf = build () in
  let bits = Inquery.Sigfile.term_bits sf "apple" in
  Alcotest.(check bool) "k distinct-ish bits" true (List.length bits >= 1 && List.length bits <= 3);
  Alcotest.(check (list int)) "stable" bits (Inquery.Sigfile.term_bits sf "apple");
  List.iter
    (fun b -> Alcotest.(check bool) "in range" true (b >= 0 && b < Inquery.Sigfile.width sf))
    bits

let test_persistence () =
  let vfs, sf = build ~organisation:Inquery.Sigfile.Bit_sliced () in
  let reopened = Inquery.Sigfile.open_existing vfs ~file:"s.sig" in
  Alcotest.(check int) "width" (Inquery.Sigfile.width sf) (Inquery.Sigfile.width reopened);
  Alcotest.(check int) "k" 3 (Inquery.Sigfile.k reopened);
  Alcotest.(check bool) "organisation" true
    (Inquery.Sigfile.organisation reopened = Inquery.Sigfile.Bit_sliced);
  Alcotest.(check (list int)) "same candidates"
    (Inquery.Sigfile.candidates sf [ "apple" ])
    (Inquery.Sigfile.candidates reopened [ "apple" ])

let test_bit_sliced_reads_less () =
  (* On a larger corpus, a one-term query reads k slices instead of the
     whole signature matrix. *)
  let vfs = Vfs.create () in
  let n = 2000 in
  let docs = Seq.init n (fun i -> (i, [| Printf.sprintf "t%d" (i mod 50) |])) in
  let seq = Inquery.Sigfile.build vfs ~file:"seq.sig" ~width:256 ~k:4 ~n_docs:n docs in
  let docs = Seq.init n (fun i -> (i, [| Printf.sprintf "t%d" (i mod 50) |])) in
  let sliced =
    Inquery.Sigfile.build vfs ~file:"sl.sig" ~width:256 ~k:4
      ~organisation:Inquery.Sigfile.Bit_sliced ~n_docs:n docs
  in
  let read_bytes f =
    let before = (Vfs.counters vfs).Vfs.bytes_read in
    ignore (f ());
    (Vfs.counters vfs).Vfs.bytes_read - before
  in
  let seq_bytes = read_bytes (fun () -> Inquery.Sigfile.candidates seq [ "t7" ]) in
  let sliced_bytes = read_bytes (fun () -> Inquery.Sigfile.candidates sliced [ "t7" ]) in
  Alcotest.(check bool)
    (Printf.sprintf "sliced %d << sequential %d" sliced_bytes seq_bytes)
    true
    (sliced_bytes * 4 < seq_bytes);
  (* And they agree. *)
  Alcotest.(check (list int)) "agree at scale"
    (Inquery.Sigfile.candidates seq [ "t7" ])
    (Inquery.Sigfile.candidates sliced [ "t7" ])

let test_false_positive_rate_reasonable () =
  (* Saturating signatures (many terms, few bits) must still never miss;
     false positives grow instead. *)
  let vfs = Vfs.create () in
  let n = 200 in
  let docs = Seq.init n (fun i -> (i, Array.init 30 (fun j -> Printf.sprintf "w%d" ((i * 7) + j)))) in
  let sf = Inquery.Sigfile.build vfs ~file:"fp.sig" ~width:64 ~k:3 ~n_docs:n docs in
  (* Every document still matches its own first term. *)
  for i = 0 to n - 1 do
    if not (List.mem i (Inquery.Sigfile.candidates sf [ Printf.sprintf "w%d" (i * 7) ])) then
      Alcotest.fail (Printf.sprintf "false negative for doc %d" i)
  done

let test_validation () =
  let vfs = Vfs.create () in
  let invalid f = match f () with _ -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "width not multiple of 8" true
    (invalid (fun () -> Inquery.Sigfile.build vfs ~file:"x" ~width:60 ~k:3 ~n_docs:2 Seq.empty));
  Alcotest.(check bool) "k too large" true
    (invalid (fun () -> Inquery.Sigfile.build vfs ~file:"y" ~width:8 ~k:9 ~n_docs:2 Seq.empty));
  Alcotest.(check bool) "doc out of range" true
    (invalid (fun () ->
         Inquery.Sigfile.build vfs ~file:"z" ~width:8 ~k:1 ~n_docs:1
           (List.to_seq [ (5, [| "a" |]) ])));
  Alcotest.(check bool) "missing file" true
    (match Inquery.Sigfile.open_existing vfs ~file:"nope" with
    | _ -> false
    | exception Failure _ -> true)

let suite =
  [
    Alcotest.test_case "no false negatives" `Quick test_no_false_negatives;
    Alcotest.test_case "organisations agree" `Quick test_organisations_agree;
    Alcotest.test_case "discrimination" `Quick test_discrimination;
    Alcotest.test_case "empty query" `Quick test_empty_query_matches_all;
    Alcotest.test_case "term bits deterministic" `Quick test_term_bits_deterministic;
    Alcotest.test_case "persistence" `Quick test_persistence;
    Alcotest.test_case "bit-sliced reads less" `Quick test_bit_sliced_reads_less;
    Alcotest.test_case "false positive regime" `Quick test_false_positive_rate_reasonable;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
