(* Object identifiers: structure and global mapping. *)

let test_structure () =
  Alcotest.(check int) "255 per lseg" 255 Mneme.Oid.slots_per_lseg;
  let id = Mneme.Oid.make ~lseg:3 ~slot:10 in
  Alcotest.(check int) "lseg" 3 (Mneme.Oid.lseg id);
  Alcotest.(check int) "slot" 10 (Mneme.Oid.slot id);
  Alcotest.(check int) "value" ((3 * 255) + 10) id

let test_roundtrip_boundaries () =
  List.iter
    (fun (lseg, slot) ->
      let id = Mneme.Oid.make ~lseg ~slot in
      Alcotest.(check int) "lseg rt" lseg (Mneme.Oid.lseg id);
      Alcotest.(check int) "slot rt" slot (Mneme.Oid.slot id))
    [ (0, 0); (0, 254); (1, 0); (1000, 123) ]

let test_validation () =
  Alcotest.(check bool) "slot 255" true
    (match Mneme.Oid.make ~lseg:0 ~slot:255 with _ -> false | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "negative lseg" true
    (match Mneme.Oid.make ~lseg:(-1) ~slot:0 with _ -> false | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "beyond 28 bits" true
    (match Mneme.Oid.make ~lseg:(1 lsl 28) ~slot:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_max_id () =
  Alcotest.(check int) "2^28 - 1" ((1 lsl 28) - 1) Mneme.Oid.max_id

let test_global_ids () =
  let gid = Mneme.Oid.Global.make ~file_handle:5 1234 in
  Alcotest.(check int) "file handle" 5 (Mneme.Oid.Global.file_handle gid);
  Alcotest.(check int) "local" 1234 (Mneme.Oid.Global.local gid);
  (* Distinct files give distinct globals for the same local id. *)
  let gid2 = Mneme.Oid.Global.make ~file_handle:6 1234 in
  Alcotest.(check bool) "distinct" true (gid <> gid2);
  Alcotest.(check bool) "local out of range" true
    (match Mneme.Oid.Global.make ~file_handle:0 (1 lsl 28) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "roundtrip boundaries" `Quick test_roundtrip_boundaries;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "max id" `Quick test_max_id;
    Alcotest.test_case "global ids" `Quick test_global_ids;
  ]
