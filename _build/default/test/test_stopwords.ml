(* Stop word lists. *)

let test_default_list () =
  let sw = Inquery.Stopwords.default in
  List.iter
    (fun w -> Alcotest.(check bool) (w ^ " is stop") true (Inquery.Stopwords.is_stopword sw w))
    [ "the"; "and"; "of"; "is"; "was"; "which" ];
  List.iter
    (fun w ->
      Alcotest.(check bool) (w ^ " is content") false (Inquery.Stopwords.is_stopword sw w))
    [ "retrieval"; "database"; "court"; "inverted" ];
  Alcotest.(check bool) "substantial list" true (Inquery.Stopwords.size sw > 200)

let test_of_list_lowercases () =
  let sw = Inquery.Stopwords.of_list [ "FOO"; "Bar" ] in
  Alcotest.(check bool) "foo" true (Inquery.Stopwords.is_stopword sw "foo");
  Alcotest.(check bool) "bar" true (Inquery.Stopwords.is_stopword sw "bar");
  Alcotest.(check int) "size" 2 (Inquery.Stopwords.size sw)

let test_file_format () =
  let sw =
    Inquery.Stopwords.of_file_contents "# comment line\nalpha\n\n  beta  \n# another\ngamma"
  in
  Alcotest.(check int) "three words" 3 (Inquery.Stopwords.size sw);
  Alcotest.(check bool) "alpha" true (Inquery.Stopwords.is_stopword sw "alpha");
  Alcotest.(check bool) "trimmed" true (Inquery.Stopwords.is_stopword sw "beta");
  Alcotest.(check bool) "comment not a word" false (Inquery.Stopwords.is_stopword sw "# comment line")

let test_duplicates_collapse () =
  let sw = Inquery.Stopwords.of_list [ "dup"; "dup"; "dup" ] in
  Alcotest.(check int) "one entry" 1 (Inquery.Stopwords.size sw)

let suite =
  [
    Alcotest.test_case "default list" `Quick test_default_list;
    Alcotest.test_case "of_list lowercases" `Quick test_of_list_lowercases;
    Alcotest.test_case "file format" `Quick test_file_format;
    Alcotest.test_case "duplicates collapse" `Quick test_duplicates_collapse;
  ]
