(* Inference network evaluation over a small in-memory index. *)

let corpus =
  [
    (0, "apple banana cherry apple");
    (1, "banana cherry");
    (2, "cherry date elderberry fig grape");
    (3, "apple apple apple banana");
    (4, "information retrieval system");
    (5, "retrieval of information");
  ]

let make () =
  let ix = Inquery.Indexer.create () in
  List.iter (fun (id, text) -> Inquery.Indexer.add_document ix ~doc_id:id text) corpus;
  let records = Hashtbl.create 16 in
  Seq.iter (fun (id, r) -> Hashtbl.replace records id r) (Inquery.Indexer.to_records ix);
  let dict = Inquery.Indexer.dictionary ix in
  let source =
    {
      Inquery.Infnet.fetch =
        (fun entry -> Hashtbl.find_opt records entry.Inquery.Dictionary.id);
      n_docs = Inquery.Indexer.document_count ix;
      max_doc_id = 5;
      avg_doc_len = Inquery.Indexer.avg_doc_length ix;
      doc_len = Inquery.Indexer.doc_length ix;
    }
  in
  (source, dict)

let eval ?stopwords ?stem s =
  let source, dict = make () in
  Inquery.Infnet.eval source dict ?stopwords ?stem (Inquery.Query.parse_exn s)

let test_default_belief () =
  Alcotest.(check (float 1e-9)) "0.4" 0.4 Inquery.Infnet.default_belief

let test_beliefs_bounded () =
  let beliefs, _ = eval "#sum( apple banana #not( cherry ) )" in
  Array.iter
    (fun b -> Alcotest.(check bool) "in [0,1]" true (b >= 0.0 && b <= 1.0))
    beliefs

let test_term_scoring () =
  let beliefs, _ = eval "apple" in
  (* Docs without the term sit at the default belief. *)
  Alcotest.(check (float 1e-9)) "absent doc" 0.4 beliefs.(2);
  Alcotest.(check bool) "present above default" true (beliefs.(0) > 0.4);
  (* Doc 3 has tf 3 of 4 tokens; doc 0 has tf 2 of 4: 3 wins. *)
  Alcotest.(check bool) "higher tf wins" true (beliefs.(3) > beliefs.(0))

let test_oov_term () =
  let beliefs, stats = eval "zzzznothere" in
  Array.iter (fun b -> Alcotest.(check (float 1e-9)) "all default" 0.4 b) beliefs;
  Alcotest.(check int) "no lookup for oov" 0 stats.Inquery.Infnet.record_lookups

let test_stats_counts () =
  let _, stats = eval "#sum( apple banana )" in
  Alcotest.(check int) "two lookups" 2 stats.Inquery.Infnet.record_lookups;
  (* apple: docs 0,3; banana: docs 0,1,3 -> 5 postings *)
  Alcotest.(check int) "postings" 5 stats.Inquery.Infnet.postings_scored;
  Alcotest.(check int) "nodes" 3 stats.Inquery.Infnet.nodes_visited

let test_and_vs_or () =
  let b_and, _ = eval "#and( apple banana )" in
  let b_or, _ = eval "#or( apple banana )" in
  (* OR dominates AND pointwise. *)
  Array.iteri
    (fun d a -> Alcotest.(check bool) (Printf.sprintf "doc %d" d) true (b_or.(d) >= a))
    b_and;
  (* Doc 2 has neither: AND default-combines to 0.16, OR to 0.64. *)
  Alcotest.(check (float 1e-6)) "and of defaults" (0.4 *. 0.4) b_and.(2);
  Alcotest.(check (float 1e-6)) "or of defaults" (1.0 -. (0.6 *. 0.6)) b_or.(2)

let test_not () =
  let b, _ = eval "#not( apple )" in
  let b_apple, _ = eval "apple" in
  Array.iteri
    (fun d v -> Alcotest.(check (float 1e-9)) "complement" (1.0 -. b_apple.(d)) v)
    b

let test_sum_is_mean () =
  let b, _ = eval "#sum( apple banana )" in
  let ba, _ = eval "apple" in
  let bb, _ = eval "banana" in
  Array.iteri
    (fun d v -> Alcotest.(check (float 1e-9)) "mean" ((ba.(d) +. bb.(d)) /. 2.0) v)
    b

let test_wsum_weighting () =
  let b21, _ = eval "#wsum( 2 apple 1 banana )" in
  let ba, _ = eval "apple" in
  let bb, _ = eval "banana" in
  Array.iteri
    (fun d v ->
      Alcotest.(check (float 1e-9)) "weighted mean" (((2.0 *. ba.(d)) +. bb.(d)) /. 3.0) v)
    b21

let test_max () =
  let b, _ = eval "#max( apple banana )" in
  let ba, _ = eval "apple" in
  let bb, _ = eval "banana" in
  Array.iteri (fun d v -> Alcotest.(check (float 1e-9)) "max" (Float.max ba.(d) bb.(d)) v) b

let test_phrase_adjacency () =
  let b, _ = eval "#phrase( information retrieval )" in
  (* "information retrieval system" contains the phrase; "retrieval of
     information" does not. *)
  Alcotest.(check bool) "doc 4 matches" true (b.(4) > 0.4);
  Alcotest.(check (float 1e-9)) "doc 5 no adjacency" 0.4 b.(5)

let test_phrase_with_oov_member () =
  let b, _ = eval "#phrase( information zzzz )" in
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "no match" 0.4 v) b

let test_idf_discrimination () =
  (* "date" appears in 1 doc, "cherry" in 3: for comparable tf the rarer
     term scores its document higher. *)
  let bd, _ = eval "date" in
  let bc, _ = eval "cherry" in
  Alcotest.(check bool) "rare term stronger" true (bd.(2) > bc.(1))

let test_stopword_query_term () =
  let b, stats = eval ~stopwords:Inquery.Stopwords.default "#sum( of retrieval )" in
  (* "of" is stopped: contributes default everywhere, no lookup. *)
  Alcotest.(check int) "one lookup" 1 stats.Inquery.Infnet.record_lookups;
  Alcotest.(check bool) "retrieval still scores" true (b.(5) > 0.4)

let test_stemmed_query () =
  (* Index is unstemmed here, so "apples" only matches via stemming off;
     this exercises the stem path finding nothing. *)
  let _, stats = eval ~stem:true "apples" in
  (* stem("apples") = "appl", not in the unstemmed index *)
  Alcotest.(check int) "no lookup" 0 stats.Inquery.Infnet.record_lookups

let test_belief_formula () =
  let source, dict = make () in
  ignore source;
  ignore dict;
  (* idf of a term in all docs is 0 -> belief stays at default. *)
  let all_docs_idf =
    log ((6.0 +. 0.5) /. 6.0) /. log 7.0
  in
  Alcotest.(check bool) "near zero" true (all_docs_idf < 0.05)

let suite =
  [
    Alcotest.test_case "default belief" `Quick test_default_belief;
    Alcotest.test_case "beliefs bounded" `Quick test_beliefs_bounded;
    Alcotest.test_case "term scoring" `Quick test_term_scoring;
    Alcotest.test_case "oov term" `Quick test_oov_term;
    Alcotest.test_case "stats counts" `Quick test_stats_counts;
    Alcotest.test_case "and vs or" `Quick test_and_vs_or;
    Alcotest.test_case "not" `Quick test_not;
    Alcotest.test_case "sum is mean" `Quick test_sum_is_mean;
    Alcotest.test_case "wsum weighting" `Quick test_wsum_weighting;
    Alcotest.test_case "max" `Quick test_max;
    Alcotest.test_case "phrase adjacency" `Quick test_phrase_adjacency;
    Alcotest.test_case "phrase with oov member" `Quick test_phrase_with_oov_member;
    Alcotest.test_case "idf discrimination" `Quick test_idf_discrimination;
    Alcotest.test_case "stopword query term" `Quick test_stopword_query_term;
    Alcotest.test_case "stemmed query" `Quick test_stemmed_query;
    Alcotest.test_case "belief formula" `Quick test_belief_formula;
  ]
