(* Generic LRU: eviction order, promotion, and a random model check. *)

let test_basic_add_find () =
  let lru = Util.Lru.create ~capacity:3 in
  Alcotest.(check (option string)) "missing" None (Util.Lru.find lru 1);
  ignore (Util.Lru.add lru 1 "a");
  Alcotest.(check (option string)) "present" (Some "a") (Util.Lru.find lru 1);
  Alcotest.(check int) "length" 1 (Util.Lru.length lru)

let test_eviction_order () =
  let lru = Util.Lru.create ~capacity:2 in
  Alcotest.(check (option (pair int string))) "no evict 1" None (Util.Lru.add lru 1 "a");
  Alcotest.(check (option (pair int string))) "no evict 2" None (Util.Lru.add lru 2 "b");
  Alcotest.(check (option (pair int string))) "evicts oldest" (Some (1, "a")) (Util.Lru.add lru 3 "c")

let test_find_promotes () =
  let lru = Util.Lru.create ~capacity:2 in
  ignore (Util.Lru.add lru 1 "a");
  ignore (Util.Lru.add lru 2 "b");
  ignore (Util.Lru.find lru 1);
  (* 2 is now least recently used *)
  Alcotest.(check (option (pair int string))) "evicts 2" (Some (2, "b")) (Util.Lru.add lru 3 "c");
  Alcotest.(check bool) "1 survives" true (Util.Lru.mem lru 1)

let test_mem_does_not_promote () =
  let lru = Util.Lru.create ~capacity:2 in
  ignore (Util.Lru.add lru 1 "a");
  ignore (Util.Lru.add lru 2 "b");
  ignore (Util.Lru.mem lru 1);
  Alcotest.(check (option (pair int string))) "1 still evicts" (Some (1, "a"))
    (Util.Lru.add lru 3 "c")

let test_replace_updates_value () =
  let lru = Util.Lru.create ~capacity:2 in
  ignore (Util.Lru.add lru 1 "a");
  ignore (Util.Lru.add lru 1 "a2");
  Alcotest.(check (option string)) "replaced" (Some "a2") (Util.Lru.find lru 1);
  Alcotest.(check int) "no duplicate" 1 (Util.Lru.length lru)

let test_remove_and_clear () =
  let lru = Util.Lru.create ~capacity:3 in
  ignore (Util.Lru.add lru 1 "a");
  ignore (Util.Lru.add lru 2 "b");
  Util.Lru.remove lru 1;
  Alcotest.(check bool) "removed" false (Util.Lru.mem lru 1);
  Util.Lru.remove lru 99 (* no-op *);
  Util.Lru.clear lru;
  Alcotest.(check int) "cleared" 0 (Util.Lru.length lru)

let test_iter_order () =
  let lru = Util.Lru.create ~capacity:3 in
  ignore (Util.Lru.add lru 1 "a");
  ignore (Util.Lru.add lru 2 "b");
  ignore (Util.Lru.add lru 3 "c");
  ignore (Util.Lru.find lru 1);
  let order = ref [] in
  Util.Lru.iter lru (fun k _ -> order := k :: !order);
  Alcotest.(check (list int)) "MRU to LRU" [ 1; 3; 2 ] (List.rev !order)

let test_capacity_validation () =
  Alcotest.check_raises "zero" (Invalid_argument "Lru.create: capacity must be positive")
    (fun () -> ignore (Util.Lru.create ~capacity:0 : (int, int) Util.Lru.t))

(* Random operations against a naive reference model. *)
let prop_against_model =
  QCheck.Test.make ~name:"lru matches reference model" ~count:100
    QCheck.(list (pair (int_range 0 2) (int_range 0 9)))
    (fun ops ->
      let capacity = 4 in
      let lru = Util.Lru.create ~capacity in
      (* model: association list in MRU-first order *)
      let model = ref [] in
      let model_add k v =
        model := (k, v) :: List.remove_assoc k !model;
        if List.length !model > capacity then
          model := List.filteri (fun i _ -> i < capacity) !model
      in
      let model_find k =
        match List.assoc_opt k !model with
        | None -> None
        | Some v ->
          model := (k, v) :: List.remove_assoc k !model;
          Some v
      in
      List.for_all
        (fun (op, k) ->
          match op with
          | 0 ->
            ignore (Util.Lru.add lru k k);
            model_add k k;
            true
          | 1 -> Util.Lru.find lru k = model_find k
          | _ ->
            Util.Lru.remove lru k;
            model := List.remove_assoc k !model;
            true)
        ops
      && Util.Lru.length lru = List.length !model)

let suite =
  [
    Alcotest.test_case "basic add/find" `Quick test_basic_add_find;
    Alcotest.test_case "eviction order" `Quick test_eviction_order;
    Alcotest.test_case "find promotes" `Quick test_find_promotes;
    Alcotest.test_case "mem does not promote" `Quick test_mem_does_not_promote;
    Alcotest.test_case "replace updates" `Quick test_replace_updates_value;
    Alcotest.test_case "remove and clear" `Quick test_remove_and_clear;
    Alcotest.test_case "iter order" `Quick test_iter_order;
    Alcotest.test_case "capacity validation" `Quick test_capacity_validation;
    QCheck_alcotest.to_alcotest prop_against_model;
  ]
