(* The positional operator family: #phrase, #odN, #uwN, #syn — parsing
   and evaluation semantics on a hand-checkable corpus. *)

let corpus =
  [
    (*          positions: 0      1      2      3      4      5        *)
    (0, "persistent object store for information retrieval");
    (1, "store the object in a persistent way");
    (2, "object persistent store");
    (3, "persistent store");
    (4, "court decided the case");
    (5, "courts decide cases often");
    (6, "persistent data and far away an object sits here store");
  ]

let make () =
  let ix = Inquery.Indexer.create () in
  List.iter (fun (id, text) -> Inquery.Indexer.add_document ix ~doc_id:id text) corpus;
  let records = Hashtbl.create 16 in
  Seq.iter (fun (id, r) -> Hashtbl.replace records id r) (Inquery.Indexer.to_records ix);
  let dict = Inquery.Indexer.dictionary ix in
  let source =
    {
      Inquery.Infnet.fetch = (fun e -> Hashtbl.find_opt records e.Inquery.Dictionary.id);
      n_docs = List.length corpus;
      max_doc_id = List.length corpus - 1;
      avg_doc_len = Inquery.Indexer.avg_doc_length ix;
      doc_len = Inquery.Indexer.doc_length ix;
    }
  in
  (source, dict)

let matching_docs query =
  let source, dict = make () in
  let beliefs, _ = Inquery.Infnet.eval source dict (Inquery.Query.parse_exn query) in
  let out = ref [] in
  Array.iteri (fun d b -> if b > Inquery.Infnet.default_belief +. 1e-12 then out := d :: !out) beliefs;
  List.rev !out

(* --- parsing ------------------------------------------------------- *)

let test_parse_od () =
  match Inquery.Query.parse_exn "#od3( persistent store )" with
  | Inquery.Query.Od (3, [ "persistent"; "store" ]) -> ()
  | q -> Alcotest.fail (Inquery.Query.to_string q)

let test_parse_uw () =
  match Inquery.Query.parse_exn "#uw10( object store )" with
  | Inquery.Query.Uw (10, [ "object"; "store" ]) -> ()
  | q -> Alcotest.fail (Inquery.Query.to_string q)

let test_parse_syn () =
  match Inquery.Query.parse_exn "#syn( court courts )" with
  | Inquery.Query.Syn [ "court"; "courts" ] -> ()
  | q -> Alcotest.fail (Inquery.Query.to_string q)

let test_parse_errors () =
  let fails s = match Inquery.Query.parse s with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "od without width" true (fails "#od( a b )");
  Alcotest.(check bool) "od zero width" true (fails "#od0( a b )");
  Alcotest.(check bool) "od one term" true (fails "#od2( a )");
  Alcotest.(check bool) "uw garbage width" true (fails "#uwxy( a b )");
  Alcotest.(check bool) "empty syn" true (fails "#syn( )")

let test_to_string_roundtrip () =
  List.iter
    (fun s ->
      let q = Inquery.Query.parse_exn s in
      Alcotest.(check bool) ("reparse " ^ s) true (Inquery.Query.parse_exn (Inquery.Query.to_string q) = q))
    [ "#od3( a b c )"; "#uw12( a b )"; "#syn( a b c )" ]

let test_terms_collected () =
  let q = Inquery.Query.parse_exn "#sum( #od2( a b ) #uw5( c d ) #syn( e f ) )" in
  Alcotest.(check (list string)) "terms" [ "a"; "b"; "c"; "d"; "e"; "f" ] (Inquery.Query.terms q)

(* --- #od semantics ------------------------------------------------- *)

let test_od1_equals_phrase () =
  Alcotest.(check (list int)) "phrase" (matching_docs "#phrase( persistent store )")
    (matching_docs "#od1( persistent store )");
  (* doc 2 ("object persistent store") and doc 3 ("persistent store")
     have the terms adjacent; doc 6 has them far apart. *)
  Alcotest.(check (list int)) "adjacency only" [ 2; 3 ] (matching_docs "#od1( persistent store )")

let test_od_window_widens_matches () =
  (* "persistent object store": persistent..store within 2. *)
  Alcotest.(check (list int)) "od2" [ 0; 2; 3 ] (matching_docs "#od2( persistent store )");
  (* doc 2 is "object persistent store": persistent(1) store(2). *)
  Alcotest.(check bool) "od2 includes doc2 pair" true
    (List.mem 2 (matching_docs "#od2( object store )"));
  (* Order matters: "store ... persistent" in doc 1 does not match
     #od( persistent store ) within 2. *)
  Alcotest.(check bool) "order enforced" false (List.mem 1 (matching_docs "#od2( persistent store )"))

let test_od_three_terms () =
  (* doc 0: persistent(0) object(1) store(2): chain within 1 each. *)
  Alcotest.(check (list int)) "triple" [ 0 ] (matching_docs "#od1( persistent object store )")

let test_od_large_window () =
  (* doc 6: persistent(0) ... object(6) ... store(9): chain with window 7. *)
  Alcotest.(check bool) "doc6 in od7" true
    (List.mem 6 (matching_docs "#od7( persistent object store )"));
  Alcotest.(check bool) "doc6 not in od3" false
    (List.mem 6 (matching_docs "#od3( persistent object store )"))

(* --- #uw semantics ------------------------------------------------- *)

let test_uw_ignores_order () =
  (* doc 1: store(0) ... persistent(5): within a window of 6, any order. *)
  Alcotest.(check bool) "doc1 uw6" true (List.mem 1 (matching_docs "#uw6( persistent store )"));
  Alcotest.(check bool) "doc1 not uw3" false (List.mem 1 (matching_docs "#uw3( persistent store )"));
  (* Ordered variant rejects doc 1 even with a wide window. *)
  Alcotest.(check bool) "od6 still ordered" false
    (List.mem 1 (matching_docs "#od6( persistent store )"))

let test_uw_tight_window () =
  Alcotest.(check bool) "adjacent pair in uw2" true
    (List.mem 3 (matching_docs "#uw2( store persistent )"))

(* --- #syn semantics ------------------------------------------------- *)

let test_syn_unions_postings () =
  let docs = matching_docs "#syn( court courts )" in
  Alcotest.(check bool) "court doc" true (List.mem 4 docs);
  Alcotest.(check bool) "courts doc" true (List.mem 5 docs)

let test_syn_with_missing_member () =
  (* An OOV member is simply absent from the class. *)
  let docs = matching_docs "#syn( court zzzmissing )" in
  Alcotest.(check (list int)) "still matches court" [ 4 ] docs

let test_syn_df_shared () =
  (* The class's idf uses the union df (2 docs), weaker than the single
     term's idf (1 doc): a member doc scores lower under #syn than under
     the bare term. *)
  let source, dict = make () in
  let bel q = fst (Inquery.Infnet.eval source dict (Inquery.Query.parse_exn q)) in
  let syn = bel "#syn( court courts )" in
  let bare = bel "court" in
  Alcotest.(check bool) "union df weakens idf" true (syn.(4) < bare.(4))

(* --- cross-evaluator agreement -------------------------------------- *)

let test_daat_agreement () =
  let source, dict = make () in
  List.iter
    (fun qs ->
      let q = Inquery.Query.parse_exn qs in
      let taat, _ = Inquery.Infnet.eval source dict q in
      let daat, _ = Inquery.Infnet.eval_daat source dict q in
      List.iter
        (fun s ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "%s doc %d" qs s.Inquery.Infnet.doc)
            taat.(s.Inquery.Infnet.doc) s.Inquery.Infnet.belief)
        daat)
    [
      "#od2( persistent store )";
      "#uw6( persistent store )";
      "#syn( court courts )";
      "#sum( #od1( persistent object ) #syn( case cases ) )";
    ]

let suite =
  [
    Alcotest.test_case "parse od" `Quick test_parse_od;
    Alcotest.test_case "parse uw" `Quick test_parse_uw;
    Alcotest.test_case "parse syn" `Quick test_parse_syn;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip;
    Alcotest.test_case "terms collected" `Quick test_terms_collected;
    Alcotest.test_case "od1 = phrase" `Quick test_od1_equals_phrase;
    Alcotest.test_case "od window widens" `Quick test_od_window_widens_matches;
    Alcotest.test_case "od three terms" `Quick test_od_three_terms;
    Alcotest.test_case "od large window" `Quick test_od_large_window;
    Alcotest.test_case "uw ignores order" `Quick test_uw_ignores_order;
    Alcotest.test_case "uw tight window" `Quick test_uw_tight_window;
    Alcotest.test_case "syn unions postings" `Quick test_syn_unions_postings;
    Alcotest.test_case "syn with missing member" `Quick test_syn_with_missing_member;
    Alcotest.test_case "syn df shared" `Quick test_syn_df_shared;
    Alcotest.test_case "daat agreement" `Quick test_daat_agreement;
  ]
