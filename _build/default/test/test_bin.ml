(* Fixed-width binary coding. *)

let test_u8 () =
  let b = Bytes.create 1 in
  Util.Bin.put_u8 b 0 200;
  Alcotest.(check int) "roundtrip" 200 (Util.Bin.get_u8 b 0);
  Alcotest.check_raises "range" (Invalid_argument "Bin.put_u8: out of range") (fun () ->
      Util.Bin.put_u8 b 0 256)

let test_u16 () =
  let b = Bytes.create 2 in
  Util.Bin.put_u16 b 0 65535;
  Alcotest.(check int) "max" 65535 (Util.Bin.get_u16 b 0);
  Alcotest.check_raises "range" (Invalid_argument "Bin.put_u16: out of range") (fun () ->
      Util.Bin.put_u16 b 0 65536)

let test_u32 () =
  let b = Bytes.create 4 in
  Util.Bin.put_u32 b 0 0xffffffff;
  Alcotest.(check int) "max" 0xffffffff (Util.Bin.get_u32 b 0);
  Util.Bin.put_u32 b 0 0;
  Alcotest.(check int) "zero" 0 (Util.Bin.get_u32 b 0);
  Alcotest.check_raises "range" (Invalid_argument "Bin.put_u32: out of range") (fun () ->
      Util.Bin.put_u32 b 0 0x100000000);
  Alcotest.check_raises "negative" (Invalid_argument "Bin.put_u32: out of range") (fun () ->
      Util.Bin.put_u32 b 0 (-1))

let test_u64 () =
  let b = Bytes.create 8 in
  Util.Bin.put_u64 b 0 max_int;
  Alcotest.(check int) "max_int" max_int (Util.Bin.get_u64 b 0);
  Alcotest.check_raises "negative" (Invalid_argument "Bin.put_u64: negative") (fun () ->
      Util.Bin.put_u64 b 0 (-1))

let test_little_endian_layout () =
  let b = Bytes.create 4 in
  Util.Bin.put_u32 b 0 0x01020304;
  Alcotest.(check int) "LSB first" 4 (Char.code (Bytes.get b 0));
  Alcotest.(check int) "MSB last" 1 (Char.code (Bytes.get b 3))

let test_buffer_writers () =
  let buf = Buffer.create 16 in
  Util.Bin.buf_u8 buf 7;
  Util.Bin.buf_u16 buf 300;
  Util.Bin.buf_u32 buf 70000;
  Util.Bin.buf_u64 buf 1;
  let b = Buffer.to_bytes buf in
  Alcotest.(check int) "length" 15 (Bytes.length b);
  Alcotest.(check int) "u8" 7 (Util.Bin.get_u8 b 0);
  Alcotest.(check int) "u16" 300 (Util.Bin.get_u16 b 1);
  Alcotest.(check int) "u32" 70000 (Util.Bin.get_u32 b 3);
  Alcotest.(check int) "u64" 1 (Util.Bin.get_u64 b 7)

let test_string_roundtrip () =
  let buf = Buffer.create 16 in
  Util.Bin.buf_string buf "hello";
  Util.Bin.buf_string buf "";
  let b = Buffer.to_bytes buf in
  let s1, pos = Util.Bin.get_string b 0 in
  let s2, pos' = Util.Bin.get_string b pos in
  Alcotest.(check string) "first" "hello" s1;
  Alcotest.(check string) "empty" "" s2;
  Alcotest.(check int) "consumed" (Bytes.length b) pos'

let suite =
  [
    Alcotest.test_case "u8" `Quick test_u8;
    Alcotest.test_case "u16" `Quick test_u16;
    Alcotest.test_case "u32" `Quick test_u32;
    Alcotest.test_case "u64" `Quick test_u64;
    Alcotest.test_case "little endian" `Quick test_little_endian_layout;
    Alcotest.test_case "buffer writers" `Quick test_buffer_writers;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
  ]
