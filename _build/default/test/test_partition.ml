(* Size-class partitioning. *)

let test_default_thresholds () =
  Alcotest.(check bool) "12 bytes small" true (Core.Partition.classify 12 = Core.Partition.Small);
  Alcotest.(check bool) "13 bytes medium" true (Core.Partition.classify 13 = Core.Partition.Medium);
  Alcotest.(check bool) "4096 medium" true (Core.Partition.classify 4096 = Core.Partition.Medium);
  Alcotest.(check bool) "4097 large" true (Core.Partition.classify 4097 = Core.Partition.Large);
  Alcotest.(check bool) "0 small" true (Core.Partition.classify 0 = Core.Partition.Small)

let test_custom_thresholds () =
  let t = { Core.Partition.small_max = 100; large_min = 1000 } in
  Alcotest.(check bool) "100 small" true
    (Core.Partition.classify ~thresholds:t 100 = Core.Partition.Small);
  Alcotest.(check bool) "999 medium" true
    (Core.Partition.classify ~thresholds:t 999 = Core.Partition.Medium);
  Alcotest.(check bool) "1000 large" true
    (Core.Partition.classify ~thresholds:t 1000 = Core.Partition.Large)

let test_class_names () =
  Alcotest.(check string) "small" "small" (Core.Partition.class_name Core.Partition.Small);
  Alcotest.(check string) "medium" "medium" (Core.Partition.class_name Core.Partition.Medium);
  Alcotest.(check string) "large" "large" (Core.Partition.class_name Core.Partition.Large)

let test_census () =
  let s, m, l = Core.Partition.census [| 5; 12; 13; 4096; 4097; 100000 |] in
  Alcotest.(check int) "small" 2 s;
  Alcotest.(check int) "medium" 2 m;
  Alcotest.(check int) "large" 2 l;
  let s0, m0, l0 = Core.Partition.census [||] in
  Alcotest.(check (list int)) "empty" [ 0; 0; 0 ] [ s0; m0; l0 ]

let suite =
  [
    Alcotest.test_case "default thresholds" `Quick test_default_thresholds;
    Alcotest.test_case "custom thresholds" `Quick test_custom_thresholds;
    Alcotest.test_case "class names" `Quick test_class_names;
    Alcotest.test_case "census" `Quick test_census;
  ]
