(* Tokenization: case folding, punctuation, positions. *)

let terms text = Inquery.Lexer.terms text

let test_basic () =
  Alcotest.(check (list string)) "terms" [ "hello"; "world" ] (terms "Hello, World!")

let test_case_folding () =
  Alcotest.(check (list string)) "lowercased" [ "mixedcase"; "upper" ] (terms "MixedCase UPPER")

let test_digits () =
  Alcotest.(check (list string)) "alphanumeric" [ "ab12"; "34"; "x" ] (terms "ab12 34-x")

let test_punctuation_splits () =
  Alcotest.(check (list string)) "split" [ "a"; "b"; "c"; "d" ] (terms "a.b,c;d")

let test_empty_and_blank () =
  Alcotest.(check (list string)) "empty" [] (terms "");
  Alcotest.(check (list string)) "blank" [] (terms "  \t\n  !!! ")

let test_positions () =
  let toks = Inquery.Lexer.tokens "one two  three" in
  Alcotest.(check (list (pair string int)))
    "positions by token index"
    [ ("one", 0); ("two", 1); ("three", 2) ]
    (List.map (fun t -> (t.Inquery.Lexer.term, t.Inquery.Lexer.position)) toks)

let test_positions_skip_punctuation () =
  let toks = Inquery.Lexer.tokens "--one-- ... two" in
  Alcotest.(check (list (pair string int)))
    "dense positions"
    [ ("one", 0); ("two", 1) ]
    (List.map (fun t -> (t.Inquery.Lexer.term, t.Inquery.Lexer.position)) toks)

let test_fold_tokens () =
  let count = Inquery.Lexer.fold_tokens "a b c" ~init:0 ~f:(fun n _ _ -> n + 1) in
  Alcotest.(check int) "count" 3 count;
  let last_pos = Inquery.Lexer.fold_tokens "a b c" ~init:(-1) ~f:(fun _ _ p -> p) in
  Alcotest.(check int) "last position" 2 last_pos

let test_token_at_end_of_string () =
  Alcotest.(check (list string)) "no trailing separator" [ "end" ] (terms "end")

let test_long_text () =
  let text = String.concat " " (List.init 1000 (fun i -> Printf.sprintf "w%d" i)) in
  Alcotest.(check int) "all tokens" 1000 (List.length (terms text))

let suite =
  [
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "case folding" `Quick test_case_folding;
    Alcotest.test_case "digits" `Quick test_digits;
    Alcotest.test_case "punctuation splits" `Quick test_punctuation_splits;
    Alcotest.test_case "empty and blank" `Quick test_empty_and_blank;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "positions skip punctuation" `Quick test_positions_skip_punctuation;
    Alcotest.test_case "fold_tokens" `Quick test_fold_tokens;
    Alcotest.test_case "token at end" `Quick test_token_at_end_of_string;
    Alcotest.test_case "long text" `Quick test_long_text;
  ]
