(* Pool policies: the paper's three configurations and validation. *)

let test_small () =
  let p = Mneme.Policy.small in
  Alcotest.(check string) "name" "small" p.Mneme.Policy.name;
  Alcotest.(check int) "4K segments" 4096 p.Mneme.Policy.pseg_size;
  Alcotest.(check bool) "not singleton" false p.Mneme.Policy.singleton;
  (* 16-byte slots: 4-byte size field + 12-byte payload bound. *)
  Alcotest.(check (option int)) "12-byte payload" (Some 12) (Mneme.Policy.max_payload p)

let test_medium () =
  let p = Mneme.Policy.medium in
  Alcotest.(check int) "8K segments" 8192 p.Mneme.Policy.pseg_size;
  Alcotest.(check (option int)) "unbounded" None (Mneme.Policy.max_payload p)

let test_large () =
  let p = Mneme.Policy.large in
  Alcotest.(check bool) "singleton" true p.Mneme.Policy.singleton

let test_small_fits_whole_lseg () =
  (* 255 slots of 16 bytes plus the 6-byte header fit one 4 KB segment. *)
  match Mneme.Policy.small.Mneme.Policy.layout with
  | Mneme.Policy.Fixed_slots { slot_size } ->
    Alcotest.(check bool) "fits" true (6 + (255 * slot_size) <= 4096)
  | Mneme.Policy.Packed -> Alcotest.fail "small should be fixed-slot"

let test_validation () =
  let invalid f = match f () with _ -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "zero pseg" true
    (invalid (fun () -> Mneme.Policy.make ~name:"x" ~pseg_size:0 ()));
  Alcotest.(check bool) "slots too big for segment" true
    (invalid (fun () ->
         Mneme.Policy.make ~name:"x" ~pseg_size:1024
           ~layout:(Mneme.Policy.Fixed_slots { slot_size = 16 }) ()));
  Alcotest.(check bool) "tiny slot" true
    (invalid (fun () ->
         Mneme.Policy.make ~name:"x" ~pseg_size:8192
           ~layout:(Mneme.Policy.Fixed_slots { slot_size = 4 }) ()));
  Alcotest.(check bool) "fixed singleton" true
    (invalid (fun () ->
         Mneme.Policy.make ~name:"x" ~pseg_size:8192 ~singleton:true
           ~layout:(Mneme.Policy.Fixed_slots { slot_size = 16 }) ()))

let test_encode_decode_roundtrip () =
  List.iter
    (fun p ->
      let buf = Buffer.create 32 in
      Mneme.Policy.encode buf p;
      let p', consumed = Mneme.Policy.decode (Buffer.to_bytes buf) 0 in
      Alcotest.(check string) "name" p.Mneme.Policy.name p'.Mneme.Policy.name;
      Alcotest.(check int) "pseg" p.Mneme.Policy.pseg_size p'.Mneme.Policy.pseg_size;
      Alcotest.(check bool) "singleton" p.Mneme.Policy.singleton p'.Mneme.Policy.singleton;
      Alcotest.(check bool) "layout" true (p.Mneme.Policy.layout = p'.Mneme.Policy.layout);
      Alcotest.(check int) "consumed all" (Buffer.length buf) consumed)
    [ Mneme.Policy.small; Mneme.Policy.medium; Mneme.Policy.large;
      Mneme.Policy.make ~name:"custom" ~pseg_size:2048 ~align:512 () ]

let suite =
  [
    Alcotest.test_case "small" `Quick test_small;
    Alcotest.test_case "medium" `Quick test_medium;
    Alcotest.test_case "large" `Quick test_large;
    Alcotest.test_case "small fits whole lseg" `Quick test_small_fits_whole_lseg;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "encode/decode roundtrip" `Quick test_encode_decode_roundtrip;
  ]
