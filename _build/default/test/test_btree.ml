(* The disk B+tree: correctness against a model, bulk load, persistence,
   and the paper's access-count characterisation. *)

let make ?(page_size = 256) () =
  let vfs = Vfs.create () in
  (vfs, Btree.create vfs "t.btree" ~page_size ())

let bytes_of s = Bytes.of_string s

let test_empty_lookup () =
  let _, t = make () in
  Alcotest.(check (option bytes)) "missing" None (Btree.lookup t 42);
  Alcotest.(check bool) "mem" false (Btree.mem t 42);
  Alcotest.(check int) "count" 0 (Btree.record_count t);
  Alcotest.(check int) "height" 1 (Btree.height t)

let test_insert_lookup () =
  let _, t = make () in
  Btree.insert t 5 (bytes_of "five");
  Btree.insert t 3 (bytes_of "three");
  Alcotest.(check (option bytes)) "five" (Some (bytes_of "five")) (Btree.lookup t 5);
  Alcotest.(check (option bytes)) "three" (Some (bytes_of "three")) (Btree.lookup t 3);
  Alcotest.(check (option bytes)) "missing" None (Btree.lookup t 4);
  Alcotest.(check int) "count" 2 (Btree.record_count t)

let test_replace () =
  let _, t = make () in
  Btree.insert t 1 (bytes_of "a");
  Btree.insert t 1 (bytes_of "bb");
  Alcotest.(check (option bytes)) "replaced" (Some (bytes_of "bb")) (Btree.lookup t 1);
  Alcotest.(check int) "no duplicate" 1 (Btree.record_count t)

let test_delete () =
  let _, t = make () in
  Btree.insert t 1 (bytes_of "a");
  Btree.insert t 2 (bytes_of "b");
  Alcotest.(check bool) "deleted" true (Btree.delete t 1);
  Alcotest.(check bool) "absent" false (Btree.delete t 1);
  Alcotest.(check (option bytes)) "gone" None (Btree.lookup t 1);
  Alcotest.(check (option bytes)) "other survives" (Some (bytes_of "b")) (Btree.lookup t 2);
  Alcotest.(check int) "count" 1 (Btree.record_count t)

let test_split_growth () =
  let _, t = make () in
  (* Small pages force splits quickly. *)
  for k = 0 to 499 do
    Btree.insert t k (bytes_of (Printf.sprintf "v%d" k))
  done;
  Alcotest.(check bool) "tree grew" true (Btree.height t > 1);
  for k = 0 to 499 do
    Alcotest.(check (option bytes))
      (Printf.sprintf "k%d" k)
      (Some (bytes_of (Printf.sprintf "v%d" k)))
      (Btree.lookup t k)
  done

let test_random_order_inserts () =
  let _, t = make () in
  let rng = Util.Rng.create ~seed:77 in
  let keys = Array.init 400 (fun i -> i * 3) in
  Util.Rng.shuffle rng keys;
  Array.iter (fun k -> Btree.insert t k (bytes_of (string_of_int k))) keys;
  Array.iter
    (fun k ->
      Alcotest.(check (option bytes)) "found" (Some (bytes_of (string_of_int k))) (Btree.lookup t k))
    keys;
  Alcotest.(check (option bytes)) "gap missing" None (Btree.lookup t 1)

let test_large_records () =
  let _, t = make () in
  (* Records far larger than a page span multi-page heap chunks. *)
  let big = Bytes.make 10_000 'z' in
  Bytes.set big 9_999 '!';
  Btree.insert t 7 big;
  Btree.insert t 8 (bytes_of "small");
  Alcotest.(check (option bytes)) "big record" (Some big) (Btree.lookup t 7);
  Alcotest.(check (option bytes)) "small after big" (Some (bytes_of "small")) (Btree.lookup t 8)

let test_empty_record () =
  let _, t = make () in
  Btree.insert t 1 Bytes.empty;
  Alcotest.(check (option bytes)) "empty record" (Some Bytes.empty) (Btree.lookup t 1)

let test_free_list_reuse () =
  let vfs, t = make () in
  Btree.insert t 1 (Bytes.make 100 'a');
  let size_before = Vfs.size (Vfs.open_file vfs "t.btree") in
  (* Replacing with an equal-size record reuses the freed extent. *)
  Btree.insert t 1 (Bytes.make 100 'b');
  let size_after = Vfs.size (Vfs.open_file vfs "t.btree") in
  Alcotest.(check int) "no heap growth on same-size replace" size_before size_after

let test_bulk_load_and_iter () =
  let _, t = make () in
  let entries = List.init 1000 (fun i -> (i * 2, bytes_of (string_of_int i))) in
  Btree.bulk_load t (List.to_seq entries);
  Alcotest.(check int) "count" 1000 (Btree.record_count t);
  List.iter
    (fun (k, v) -> Alcotest.(check (option bytes)) "present" (Some v) (Btree.lookup t k))
    entries;
  let seen = ref [] in
  Btree.iter t (fun k _ -> seen := k :: !seen);
  Alcotest.(check (list int)) "iter ascending" (List.map fst entries) (List.rev !seen)

let test_bulk_load_empty () =
  let _, t = make () in
  Btree.bulk_load t Seq.empty;
  Alcotest.(check int) "count" 0 (Btree.record_count t);
  Alcotest.(check (option bytes)) "lookup" None (Btree.lookup t 0)

let test_bulk_load_rejects_unsorted () =
  let _, t = make () in
  Alcotest.(check bool) "unsorted raises" true
    (match Btree.bulk_load t (List.to_seq [ (2, Bytes.empty); (1, Bytes.empty) ]) with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_bulk_load_rejects_nonempty () =
  let _, t = make () in
  Btree.insert t 1 Bytes.empty;
  Alcotest.(check bool) "non-empty raises" true
    (match Btree.bulk_load t (List.to_seq [ (2, Bytes.empty) ]) with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_insert_after_bulk_load () =
  let _, t = make () in
  Btree.bulk_load t (List.to_seq (List.init 300 (fun i -> (i * 2, bytes_of "x"))));
  Btree.insert t 301 (bytes_of "new");
  Alcotest.(check (option bytes)) "inserted" (Some (bytes_of "new")) (Btree.lookup t 301);
  Alcotest.(check (option bytes)) "old intact" (Some (bytes_of "x")) (Btree.lookup t 0);
  Alcotest.(check int) "count" 301 (Btree.record_count t)

let test_persistence () =
  let vfs = Vfs.create () in
  let t = Btree.create vfs "p.btree" ~page_size:256 () in
  for k = 0 to 99 do
    Btree.insert t k (bytes_of (string_of_int (k * k)))
  done;
  Btree.flush t;
  let t2 = Btree.open_existing vfs "p.btree" in
  Alcotest.(check int) "count preserved" 100 (Btree.record_count t2);
  Alcotest.(check int) "height preserved" (Btree.height t) (Btree.height t2);
  for k = 0 to 99 do
    Alcotest.(check (option bytes))
      "value preserved"
      (Some (bytes_of (string_of_int (k * k))))
      (Btree.lookup t2 k)
  done

let test_open_errors () =
  let vfs = Vfs.create () in
  Alcotest.(check bool) "missing file" true
    (match Btree.open_existing vfs "nope" with _ -> false | exception Failure _ -> true);
  let f = Vfs.open_file vfs "bad" in
  ignore (Vfs.append f (Bytes.make 64 'Z'));
  Alcotest.(check bool) "bad magic" true
    (match Btree.open_existing vfs "bad" with _ -> false | exception Failure _ -> true)

let test_create_existing_rejected () =
  let vfs = Vfs.create () in
  ignore (Btree.create vfs "dup" ());
  Alcotest.(check bool) "duplicate raises" true
    (match Btree.create vfs "dup" () with _ -> false | exception Invalid_argument _ -> true)

let test_key_range_check () =
  let _, t = make () in
  Alcotest.(check bool) "negative key" true
    (match Btree.insert t (-1) Bytes.empty with () -> false | exception Invalid_argument _ -> true)

(* The paper's baseline characterisation: with only the root cached,
   every lookup in a deep tree costs more than one file access. *)
let test_access_counts () =
  let vfs = Vfs.create () in
  let t = Btree.create vfs "a.btree" ~page_size:256 () in
  Btree.bulk_load t (List.to_seq (List.init 2000 (fun i -> (i, Bytes.make 20 'x'))));
  Alcotest.(check bool) "height at least 3" true (Btree.height t >= 3);
  (* Warm the root cache. *)
  ignore (Btree.lookup t 0);
  let before = (Vfs.counters vfs).Vfs.file_accesses in
  let lookups = 100 in
  for k = 0 to lookups - 1 do
    ignore (Btree.lookup t (k * 17 mod 2000))
  done;
  let accesses = (Vfs.counters vfs).Vfs.file_accesses - before in
  let per_lookup = float_of_int accesses /. float_of_int lookups in
  Alcotest.(check bool)
    (Printf.sprintf "A > 1 (got %.2f)" per_lookup)
    true (per_lookup > 1.5);
  Alcotest.(check bool) "A matches height minus root plus record" true
    (per_lookup = float_of_int (Btree.height t))

let test_cached_levels () =
  let vfs = Vfs.create () in
  let t = Btree.create vfs "c.btree" ~page_size:256 ~cached_levels:3 () in
  Btree.bulk_load t (List.to_seq (List.init 2000 (fun i -> (i, Bytes.make 20 'x'))));
  Btree.flush t;
  Alcotest.(check int) "accessor" 3 (Btree.cached_levels t);
  (* With the whole 3-level node path cached, a warm lookup costs only
     the record read. *)
  let t3 = Btree.open_existing ~cached_levels:3 vfs "c.btree" in
  (* First pass populates the node cache (each node pays its first
     touch); the second pass runs entirely against cached nodes. *)
  for k = 0 to 50 do
    ignore (Btree.lookup t3 (k * 13 mod 2000))
  done;
  let before = (Vfs.counters vfs).Vfs.file_accesses in
  for k = 0 to 50 do
    ignore (Btree.lookup t3 (k * 13 mod 2000))
  done;
  let per = float_of_int ((Vfs.counters vfs).Vfs.file_accesses - before) /. 51.0 in
  Alcotest.(check (float 1e-9)) "warm A is exactly the record read" 1.0 per;
  Alcotest.(check bool) "nodes held" true (Btree.cached_nodes t3 > 1);
  (* cached_levels 0 pays for every node including the root. *)
  let t0 = Btree.open_existing ~cached_levels:0 vfs "c.btree" in
  let before = (Vfs.counters vfs).Vfs.file_accesses in
  for k = 0 to 49 do
    ignore (Btree.lookup t0 (k * 13 mod 2000))
  done;
  let per0 = float_of_int ((Vfs.counters vfs).Vfs.file_accesses - before) /. 50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "uncached A = height + record (%.2f)" per0)
    true
    (per0 = float_of_int (Btree.height t0) +. 1.0);
  Alcotest.(check int) "nothing held" 0 (Btree.cached_nodes t0)

let prop_model_check =
  QCheck.Test.make ~name:"btree matches Hashtbl model" ~count:40
    QCheck.(list (pair (int_range 0 2) (int_range 0 200)))
    (fun ops ->
      let vfs = Vfs.create () in
      let t = Btree.create vfs "m.btree" ~page_size:256 () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 ->
            Btree.insert t k (Bytes.of_string (string_of_int (k * 7)));
            Hashtbl.replace model k (Bytes.of_string (string_of_int (k * 7)))
          | 1 -> ignore (Btree.delete t k); Hashtbl.remove model k
          | _ -> ())
        ops;
      Hashtbl.fold (fun k v acc -> acc && Btree.lookup t k = Some v) model true
      && Btree.record_count t = Hashtbl.length model
      && List.for_all
           (fun (_, k) -> Hashtbl.mem model k || Btree.lookup t k = None)
           ops)

let suite =
  [
    Alcotest.test_case "empty lookup" `Quick test_empty_lookup;
    Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
    Alcotest.test_case "replace" `Quick test_replace;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "split growth" `Quick test_split_growth;
    Alcotest.test_case "random order inserts" `Quick test_random_order_inserts;
    Alcotest.test_case "large records" `Quick test_large_records;
    Alcotest.test_case "empty record" `Quick test_empty_record;
    Alcotest.test_case "free list reuse" `Quick test_free_list_reuse;
    Alcotest.test_case "bulk load and iter" `Quick test_bulk_load_and_iter;
    Alcotest.test_case "bulk load empty" `Quick test_bulk_load_empty;
    Alcotest.test_case "bulk load rejects unsorted" `Quick test_bulk_load_rejects_unsorted;
    Alcotest.test_case "bulk load rejects non-empty" `Quick test_bulk_load_rejects_nonempty;
    Alcotest.test_case "insert after bulk load" `Quick test_insert_after_bulk_load;
    Alcotest.test_case "persistence" `Quick test_persistence;
    Alcotest.test_case "open errors" `Quick test_open_errors;
    Alcotest.test_case "create existing rejected" `Quick test_create_existing_rejected;
    Alcotest.test_case "key range check" `Quick test_key_range_check;
    Alcotest.test_case "access counts" `Quick test_access_counts;
    Alcotest.test_case "cached levels" `Quick test_cached_levels;
    QCheck_alcotest.to_alcotest prop_model_check;
  ]
