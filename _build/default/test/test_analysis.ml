(* Informetric analysis: the synthetic collections obey the laws the
   calibration claims. *)

let model =
  Collections.Docmodel.make ~name:"ana" ~n_docs:600 ~core_vocab:3000 ~mean_doc_len:80.0
    ~hapax_prob:0.02 ~seed:55 ()

let indexer = lazy (Collections.Synth.build_index model)

let test_term_profile () =
  let p = Collections.Analysis.term_profile (Lazy.force indexer) in
  Alcotest.(check bool) "distinct positive" true (p.Collections.Analysis.distinct_terms > 1000);
  Alcotest.(check bool) "hapax positive" true (p.Collections.Analysis.hapax_terms > 100);
  Alcotest.(check bool) "top term is heavy" true (p.Collections.Analysis.top_frequency > 500);
  Alcotest.(check int) "occurrences match indexer"
    (Inquery.Indexer.occurrence_count (Lazy.force indexer))
    p.Collections.Analysis.total_occurrences

let test_hapax_fraction () =
  let p = Collections.Analysis.term_profile (Lazy.force indexer) in
  let f = Collections.Analysis.hapax_fraction p in
  (* The hapax stream plus the core tail put this well above zero. *)
  Alcotest.(check bool) (Printf.sprintf "fraction %.2f" f) true (f > 0.1 && f < 0.9)

let test_zipf_fit_recovers_exponent () =
  let s, r2 = Collections.Analysis.zipf_fit ~ranks:150 (Lazy.force indexer) in
  (* The model draws from Zipf(s = 0.8); sampling noise allowed. *)
  Alcotest.(check bool) (Printf.sprintf "s = %.2f" s) true (s > 0.6 && s < 1.0);
  Alcotest.(check bool) (Printf.sprintf "r2 = %.3f" r2) true (r2 > 0.9)

let test_vocabulary_growth_monotone () =
  let curve = Collections.Analysis.vocabulary_growth model ~samples:20 in
  Alcotest.(check bool) "several samples" true (List.length curve >= 10);
  let rec check = function
    | (t1, d1) :: ((t2, d2) :: _ as rest) ->
      Alcotest.(check bool) "tokens ascend" true (t1 < t2);
      Alcotest.(check bool) "vocabulary never shrinks" true (d1 <= d2);
      check rest
    | _ -> ()
  in
  check curve;
  (* Sub-linear growth: final distinct << final tokens. *)
  let t_end, d_end = List.nth curve (List.length curve - 1) in
  Alcotest.(check bool) "sub-linear" true (d_end * 4 < t_end)

let test_heaps_fit () =
  let curve = Collections.Analysis.vocabulary_growth model ~samples:25 in
  let beta, r2 = Collections.Analysis.heaps_fit curve in
  Alcotest.(check bool) (Printf.sprintf "beta = %.2f" beta) true (beta > 0.2 && beta < 1.0);
  Alcotest.(check bool) (Printf.sprintf "r2 = %.3f" r2) true (r2 > 0.8)

let test_linear_fit_exact_line () =
  let slope, intercept, r2 =
    Util.Stats.linear_fit [ (1.0, 3.0); (2.0, 5.0); (3.0, 7.0) ]
  in
  Alcotest.(check (float 1e-9)) "slope" 2.0 slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 intercept;
  Alcotest.(check (float 1e-9)) "r2" 1.0 r2;
  Alcotest.(check bool) "degenerate input" true
    (match Util.Stats.linear_fit [ (1.0, 1.0) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_validation () =
  Alcotest.(check bool) "zero samples" true
    (match Collections.Analysis.vocabulary_growth model ~samples:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "term profile" `Quick test_term_profile;
    Alcotest.test_case "hapax fraction" `Quick test_hapax_fraction;
    Alcotest.test_case "zipf fit" `Quick test_zipf_fit_recovers_exponent;
    Alcotest.test_case "vocabulary growth" `Quick test_vocabulary_growth_monotone;
    Alcotest.test_case "heaps fit" `Quick test_heaps_fit;
    Alcotest.test_case "linear fit" `Quick test_linear_fit_exact_line;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
