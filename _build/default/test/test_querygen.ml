(* Query set generation: determinism, structure, repetition. *)

let model =
  Collections.Docmodel.make ~name:"qm" ~n_docs:500 ~core_vocab:2000 ~mean_doc_len:50.0 ~seed:5 ()

let spec ?(structure = Collections.Querygen.Flat) ?(weighted = false) ?(phrase_prob = 0.0)
    ?(oov_prob = 0.0) ?(seed = 31) () =
  Collections.Querygen.make ~set_name:"t" ~n_queries:25 ~mean_terms:6.0 ~pool_size:40
    ~pool_top_bias:200 ~fresh_prob:0.1 ~oov_prob ~phrase_prob ~weighted ~structure ~seed ()

let test_count_and_determinism () =
  let qs1 = Collections.Querygen.generate model (spec ()) in
  let qs2 = Collections.Querygen.generate model (spec ()) in
  Alcotest.(check int) "count" 25 (List.length qs1);
  Alcotest.(check bool) "deterministic" true (qs1 = qs2);
  let qs3 = Collections.Querygen.generate model (spec ~seed:32 ()) in
  Alcotest.(check bool) "seed changes queries" true (qs1 <> qs3)

let test_all_parseable () =
  List.iter
    (fun variant ->
      List.iter
        (fun q ->
          match Inquery.Query.parse q with
          | Ok _ -> ()
          | Error msg -> Alcotest.fail (Printf.sprintf "unparseable %S: %s" q msg))
        (Collections.Querygen.generate model variant))
    [
      spec ();
      spec ~structure:Collections.Querygen.Cnf ();
      spec ~structure:Collections.Querygen.Dnf ();
      spec ~weighted:true ~phrase_prob:0.3 ~oov_prob:0.2 ();
    ]

let unique_terms queries =
  List.concat_map
    (fun q -> Inquery.Query.terms (Inquery.Query.parse_exn q))
    queries
  |> List.sort_uniq compare

let test_structures_share_terms () =
  (* The paper's CACM sets 1 and 2: same queries, different boolean
     representations. *)
  let cnf = Collections.Querygen.generate model (spec ~structure:Collections.Querygen.Cnf ()) in
  let dnf = Collections.Querygen.generate model (spec ~structure:Collections.Querygen.Dnf ()) in
  Alcotest.(check (list string)) "same vocabulary" (unique_terms cnf) (unique_terms dnf);
  Alcotest.(check bool) "different surface form" true (cnf <> dnf)

let test_dnf_duplicates_terms () =
  (* DNF expansion names some terms more than once per query. *)
  let dnf = Collections.Querygen.generate model (spec ~structure:Collections.Querygen.Dnf ()) in
  let cnf = Collections.Querygen.generate model (spec ~structure:Collections.Querygen.Cnf ()) in
  let leaf_count queries =
    List.fold_left
      (fun acc q -> acc + Inquery.Query.node_count (Inquery.Query.parse_exn q))
      0 queries
  in
  Alcotest.(check bool) "dnf larger trees" true (leaf_count dnf > leaf_count cnf)

let test_term_repetition_across_queries () =
  let qs = Collections.Querygen.generate model (spec ()) in
  let all_terms =
    List.concat_map (fun q -> Inquery.Query.terms (Inquery.Query.parse_exn q)) qs
  in
  let distinct = List.sort_uniq compare all_terms in
  (* With a 40-term pool and 25 x ~6 draws, repetition is guaranteed. *)
  Alcotest.(check bool)
    (Printf.sprintf "repetition (%d uses, %d distinct)" (List.length all_terms)
       (List.length distinct))
    true
    (List.length distinct * 2 < List.length all_terms)

let test_weighted_form () =
  let qs = Collections.Querygen.generate model (spec ~weighted:true ()) in
  List.iter
    (fun q ->
      match Inquery.Query.parse_exn q with
      | Inquery.Query.Wsum _ -> ()
      | _ -> Alcotest.fail ("not a wsum: " ^ q))
    qs

let test_phrases_present () =
  let qs = Collections.Querygen.generate model (spec ~phrase_prob:0.5 ()) in
  let has_phrase =
    List.exists
      (fun q ->
        let rec scan = function
          | Inquery.Query.Phrase _ -> true
          | Inquery.Query.Term _ | Od _ | Uw _ | Syn _ -> false
          | Inquery.Query.Sum ns | And ns | Or ns | Max ns -> List.exists scan ns
          | Inquery.Query.Wsum ps -> List.exists (fun (_, n) -> scan n) ps
          | Inquery.Query.Not n -> scan n
        in
        scan (Inquery.Query.parse_exn q))
      qs
  in
  Alcotest.(check bool) "phrases generated" true has_phrase

let test_oov_terms_unindexed () =
  let qs = Collections.Querygen.generate model (spec ~oov_prob:0.5 ()) in
  let oov =
    List.concat_map (fun q -> Inquery.Query.terms (Inquery.Query.parse_exn q)) qs
    |> List.filter (fun t -> t.[0] = 'z')
  in
  Alcotest.(check bool) "oov present" true (oov <> []);
  (* OOV terms never collide with synthetic vocabulary. *)
  let ix = Collections.Synth.build_index model in
  List.iter
    (fun t ->
      Alcotest.(check bool) (t ^ " unindexed") true
        (Inquery.Dictionary.find (Inquery.Indexer.dictionary ix) t = None))
    oov

let test_judgments () =
  let js = Collections.Querygen.judgments model (spec ()) ~n_relevant:10 in
  Alcotest.(check int) "per query" 25 (List.length js);
  List.iter
    (fun j -> Alcotest.(check int) "relevant count" 10 (Inquery.Eval.relevant_count j))
    js;
  let js2 = Collections.Querygen.judgments model (spec ()) ~n_relevant:10 in
  Alcotest.(check bool) "deterministic" true
    (List.for_all2
       (fun a b -> Inquery.Eval.relevant_count a = Inquery.Eval.relevant_count b)
       js js2)

let test_validation () =
  let invalid f = match f () with _ -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "zero queries" true
    (invalid (fun () ->
         Collections.Querygen.make ~set_name:"x" ~n_queries:0 ~mean_terms:5.0 ~pool_top_bias:10 ()));
  Alcotest.(check bool) "bad prob" true
    (invalid (fun () ->
         Collections.Querygen.make ~set_name:"x" ~mean_terms:5.0 ~pool_top_bias:10
           ~fresh_prob:1.5 ()))

let suite =
  [
    Alcotest.test_case "count and determinism" `Quick test_count_and_determinism;
    Alcotest.test_case "all parseable" `Quick test_all_parseable;
    Alcotest.test_case "structures share terms" `Quick test_structures_share_terms;
    Alcotest.test_case "dnf duplicates" `Quick test_dnf_duplicates_terms;
    Alcotest.test_case "repetition across queries" `Quick test_term_repetition_across_queries;
    Alcotest.test_case "weighted form" `Quick test_weighted_form;
    Alcotest.test_case "phrases present" `Quick test_phrases_present;
    Alcotest.test_case "oov unindexed" `Quick test_oov_terms_unindexed;
    Alcotest.test_case "judgments" `Quick test_judgments;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
