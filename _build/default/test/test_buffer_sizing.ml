(* The Table 2 buffer-size heuristics. *)

let test_large_rule () =
  let b = Core.Buffer_sizing.compute ~largest_record:100_000 () in
  Alcotest.(check int) "3x largest" 300_000 b.Core.Buffer_sizing.large

let test_medium_nine_percent () =
  let b = Core.Buffer_sizing.compute ~largest_record:1_000_000 () in
  Alcotest.(check int) "9% of large" 270_000 b.Core.Buffer_sizing.medium

let test_medium_cacm_minimum () =
  (* For a small collection, 9% of large would not hold three medium
     segments; the heuristic floors at 3 segments — the paper's CACM
     exception. *)
  let b = Core.Buffer_sizing.compute ~largest_record:8_000 () in
  Alcotest.(check int) "3 medium segments" (3 * 8192) b.Core.Buffer_sizing.medium

let test_small_rule () =
  let b = Core.Buffer_sizing.compute ~largest_record:50_000 () in
  Alcotest.(check int) "3 small segments" (3 * 4096) b.Core.Buffer_sizing.small

let test_custom_segments () =
  let b =
    Core.Buffer_sizing.compute ~small_pseg:1024 ~medium_pseg:2048 ~medium_ratio:0.5
      ~largest_record:100_000 ()
  in
  Alcotest.(check int) "small" 3072 b.Core.Buffer_sizing.small;
  Alcotest.(check int) "medium ratio" 150_000 b.Core.Buffer_sizing.medium

let test_no_cache () =
  Alcotest.(check int) "small" 0 Core.Buffer_sizing.no_cache.Core.Buffer_sizing.small;
  Alcotest.(check int) "medium" 0 Core.Buffer_sizing.no_cache.Core.Buffer_sizing.medium;
  Alcotest.(check int) "large" 0 Core.Buffer_sizing.no_cache.Core.Buffer_sizing.large

let test_with_large () =
  let b = Core.Buffer_sizing.compute ~largest_record:10_000 () in
  let b' = Core.Buffer_sizing.with_large b 999 in
  Alcotest.(check int) "override" 999 b'.Core.Buffer_sizing.large;
  Alcotest.(check int) "others kept" b.Core.Buffer_sizing.medium b'.Core.Buffer_sizing.medium

let test_validation () =
  Alcotest.(check bool) "zero largest" true
    (match Core.Buffer_sizing.compute ~largest_record:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "large rule" `Quick test_large_rule;
    Alcotest.test_case "medium 9%" `Quick test_medium_nine_percent;
    Alcotest.test_case "medium CACM minimum" `Quick test_medium_cacm_minimum;
    Alcotest.test_case "small rule" `Quick test_small_rule;
    Alcotest.test_case "custom segments" `Quick test_custom_segments;
    Alcotest.test_case "no cache" `Quick test_no_cache;
    Alcotest.test_case "with_large" `Quick test_with_large;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
