(* The experiment driver end to end on a small collection, checking the
   paper's qualitative results as invariants. *)

let model () =
  Collections.Docmodel.make ~name:"exp" ~n_docs:800 ~core_vocab:3000 ~mean_doc_len:80.0
    ~hapax_prob:0.015 ~seed:23 ()

let prepared = lazy (Core.Experiment.prepare (model ()))

let queries =
  lazy
    (Collections.Querygen.generate (model ())
       (Collections.Querygen.make ~set_name:"exp" ~n_queries:20 ~mean_terms:6.0 ~pool_size:50
          ~pool_top_bias:200 ~seed:41 ()))

let run version = Core.Experiment.run_query_set (Lazy.force prepared) version ~queries:(Lazy.force queries)

let test_prepare_consistency () =
  let p = Lazy.force prepared in
  Alcotest.(check int) "record sizes count" p.Core.Experiment.record_count
    (Array.length p.Core.Experiment.record_sizes);
  Alcotest.(check bool) "largest positive" true (p.Core.Experiment.largest_record > 0);
  Alcotest.(check bool) "btree file non-empty" true (p.Core.Experiment.btree_size > 0);
  Alcotest.(check bool) "mneme file non-empty" true (p.Core.Experiment.mneme_size > 0);
  let max_size = Array.fold_left (fun acc (_, s) -> max acc s) 0 p.Core.Experiment.record_sizes in
  Alcotest.(check int) "largest matches" max_size p.Core.Experiment.largest_record

let test_version_names () =
  Alcotest.(check string) "btree" "B-Tree" (Core.Experiment.version_name Core.Experiment.Btree);
  Alcotest.(check string) "nocache" "Mneme, No Cache"
    (Core.Experiment.version_name Core.Experiment.Mneme_no_cache);
  Alcotest.(check string) "cache" "Mneme, Cache"
    (Core.Experiment.version_name Core.Experiment.Mneme_cache)

let test_btree_access_characteristic () =
  let r = run Core.Experiment.Btree in
  let a = Core.Experiment.accesses_per_lookup r in
  Alcotest.(check bool)
    (Printf.sprintf "A well above 1 (got %.2f)" a)
    true (a >= 1.5);
  Alcotest.(check int) "no buffers" 0 (List.length r.Core.Experiment.buffers)

let test_mneme_access_characteristic () =
  let r = run Core.Experiment.Mneme_no_cache in
  let a = Core.Experiment.accesses_per_lookup r in
  Alcotest.(check bool)
    (Printf.sprintf "A close to 1 (got %.2f)" a)
    true
    (a >= 0.95 && a <= 1.25)

let test_cache_reduces_accesses () =
  let nc = run Core.Experiment.Mneme_no_cache in
  let c = run Core.Experiment.Mneme_cache in
  Alcotest.(check bool) "fewer accesses with cache" true
    (c.Core.Experiment.file_accesses < nc.Core.Experiment.file_accesses);
  Alcotest.(check bool) "fewer bytes with cache" true
    (c.Core.Experiment.kbytes_read < nc.Core.Experiment.kbytes_read);
  Alcotest.(check bool) "A below 1 with cache" true
    (Core.Experiment.accesses_per_lookup c < 1.0)

let test_paper_headline_orderings () =
  (* The paper's core result: Mneme beats the B-tree; caching helps more. *)
  let bt = run Core.Experiment.Btree in
  let nc = run Core.Experiment.Mneme_no_cache in
  let c = run Core.Experiment.Mneme_cache in
  Alcotest.(check bool) "nocache sys+io <= btree" true
    (nc.Core.Experiment.sys_io_s <= bt.Core.Experiment.sys_io_s);
  Alcotest.(check bool) "cache sys+io <= nocache" true
    (c.Core.Experiment.sys_io_s <= nc.Core.Experiment.sys_io_s);
  Alcotest.(check bool) "wall ordering" true
    (c.Core.Experiment.wall_s <= bt.Core.Experiment.wall_s);
  (* Engine CPU is identical across versions: same queries, same index. *)
  Alcotest.(check (float 0.02)) "engine cpu comparable" bt.Core.Experiment.engine_cpu_s
    c.Core.Experiment.engine_cpu_s

let test_runs_deterministic () =
  let r1 = run Core.Experiment.Mneme_cache in
  let r2 = run Core.Experiment.Mneme_cache in
  Alcotest.(check int) "I" r1.Core.Experiment.io_inputs r2.Core.Experiment.io_inputs;
  Alcotest.(check int) "accesses" r1.Core.Experiment.file_accesses r2.Core.Experiment.file_accesses;
  Alcotest.(check (float 1e-9)) "wall" r1.Core.Experiment.wall_s r2.Core.Experiment.wall_s

let test_buffer_stats_present_for_cache () =
  let c = run Core.Experiment.Mneme_cache in
  Alcotest.(check (list string)) "pools" [ "small"; "medium"; "large" ]
    (List.map fst c.Core.Experiment.buffers);
  let refs = List.fold_left (fun acc (_, s) -> acc + s.Mneme.Buffer_pool.refs) 0 c.Core.Experiment.buffers in
  Alcotest.(check bool) "references recorded" true (refs > 0)

let test_n_queries () =
  let r = run Core.Experiment.Btree in
  Alcotest.(check int) "query count" 20 r.Core.Experiment.n_queries;
  Alcotest.(check bool) "lookups happened" true (r.Core.Experiment.record_lookups > 0);
  Alcotest.(check bool) "postings scored" true (r.Core.Experiment.postings_scored > 0)

let test_default_buffers_heuristic () =
  let p = Lazy.force prepared in
  let b = Core.Experiment.default_buffers p in
  Alcotest.(check int) "large rule" (3 * p.Core.Experiment.largest_record)
    b.Core.Buffer_sizing.large

let test_sweep_monotone_tendency () =
  let p = Lazy.force prepared in
  let qs = Lazy.force queries in
  let sizes = [ 8192; 65536; 1 lsl 20 ] in
  let rates = Core.Experiment.large_buffer_sweep p ~queries:qs ~sizes in
  Alcotest.(check int) "all sizes" 3 (List.length rates);
  let hit s = List.assoc s rates in
  Alcotest.(check bool) "bigger buffer never worse (ends)" true (hit (1 lsl 20) >= hit 8192);
  List.iter
    (fun (_, rate) -> Alcotest.(check bool) "rate in [0,1]" true (rate >= 0.0 && rate <= 1.0))
    rates

let test_open_engine_smoke () =
  let p = Lazy.force prepared in
  let engine = Core.Experiment.open_engine p Core.Experiment.Mneme_cache in
  let result = Core.Engine.run_query_string engine "#sum( ba be bi )" in
  Alcotest.(check bool) "some lookups" true (result.Core.Engine.record_lookups >= 0);
  Alcotest.(check bool) "ranked list" true (List.length result.Core.Engine.ranked >= 0)

let test_policy_ablation_runs () =
  let p = Lazy.force prepared in
  let qs = Lazy.force queries in
  List.iter
    (fun policy ->
      let r = Core.Experiment.run_query_set ~policy p Core.Experiment.Mneme_cache ~queries:qs in
      Alcotest.(check bool) "ran" true (r.Core.Experiment.file_accesses > 0))
    [ Mneme.Buffer_pool.Lru; Mneme.Buffer_pool.Fifo; Mneme.Buffer_pool.Clock ]

let suite =
  [
    Alcotest.test_case "prepare consistency" `Quick test_prepare_consistency;
    Alcotest.test_case "version names" `Quick test_version_names;
    Alcotest.test_case "btree access characteristic" `Quick test_btree_access_characteristic;
    Alcotest.test_case "mneme access characteristic" `Quick test_mneme_access_characteristic;
    Alcotest.test_case "cache reduces accesses" `Quick test_cache_reduces_accesses;
    Alcotest.test_case "paper headline orderings" `Quick test_paper_headline_orderings;
    Alcotest.test_case "runs deterministic" `Quick test_runs_deterministic;
    Alcotest.test_case "buffer stats present" `Quick test_buffer_stats_present_for_cache;
    Alcotest.test_case "n queries" `Quick test_n_queries;
    Alcotest.test_case "default buffers heuristic" `Quick test_default_buffers_heuristic;
    Alcotest.test_case "sweep monotone tendency" `Quick test_sweep_monotone_tendency;
    Alcotest.test_case "open engine smoke" `Quick test_open_engine_smoke;
    Alcotest.test_case "policy ablation runs" `Quick test_policy_ablation_runs;
  ]
