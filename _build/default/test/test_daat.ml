(* Document-at-a-time evaluation agrees with term-at-a-time. *)

let corpus =
  [
    (0, "apple banana cherry apple date");
    (1, "banana cherry banana");
    (2, "cherry date elderberry fig grape");
    (3, "apple apple apple banana");
    (4, "information retrieval system design");
    (5, "retrieval of information by content");
    (6, "grape fig banana");
  ]

let make () =
  let ix = Inquery.Indexer.create () in
  List.iter (fun (id, text) -> Inquery.Indexer.add_document ix ~doc_id:id text) corpus;
  let records = Hashtbl.create 16 in
  Seq.iter (fun (id, r) -> Hashtbl.replace records id r) (Inquery.Indexer.to_records ix);
  let dict = Inquery.Indexer.dictionary ix in
  let source =
    {
      Inquery.Infnet.fetch = (fun e -> Hashtbl.find_opt records e.Inquery.Dictionary.id);
      n_docs = 7;
      max_doc_id = 6;
      avg_doc_len = Inquery.Indexer.avg_doc_length ix;
      doc_len = Inquery.Indexer.doc_length ix;
    }
  in
  (source, dict)

let both query =
  let source, dict = make () in
  let q = Inquery.Query.parse_exn query in
  let taat, _ = Inquery.Infnet.eval source dict q in
  let daat, _ = Inquery.Infnet.eval_daat source dict q in
  (taat, daat)

let check_agreement query () =
  let taat, daat = both query in
  (* Every DAAT result matches TAAT exactly. *)
  List.iter
    (fun s ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "doc %d" s.Inquery.Infnet.doc)
        taat.(s.Inquery.Infnet.doc) s.Inquery.Infnet.belief)
    daat;
  (* Every TAAT doc above the query's no-evidence baseline appears in
     DAAT.  The baseline is not 0.4 for every operator — e.g. #or of two
     defaults is 0.64 — so it is read off as the array minimum (no
     top-level negation in these queries, so evidence only raises
     beliefs). *)
  let baseline = Array.fold_left min infinity taat in
  Array.iteri
    (fun d b ->
      if b > baseline +. 1e-9 then
        Alcotest.(check bool)
          (Printf.sprintf "doc %d enumerated" d)
          true
          (List.exists (fun s -> s.Inquery.Infnet.doc = d) daat))
    taat

let queries =
  [
    "apple";
    "#sum( apple banana )";
    "#and( banana cherry )";
    "#or( date grape )";
    "#wsum( 3 apple 1 cherry 2 fig )";
    "#max( apple elderberry )";
    "#sum( apple #and( banana #or( cherry date ) ) )";
    "#phrase( information retrieval )";
    "#sum( retrieval #phrase( information retrieval ) )";
  ]

let test_docs_ascending () =
  let _, daat = both "#sum( apple banana cherry )" in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a.Inquery.Infnet.doc < b.Inquery.Infnet.doc && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending ids" true (ascending daat)

let test_oov_only_query () =
  let _, daat = both "zzznothing" in
  Alcotest.(check int) "no results" 0 (List.length daat)

let test_stats_comparable () =
  let source, dict = make () in
  let q = Inquery.Query.parse_exn "#sum( apple banana )" in
  let _, s_taat = Inquery.Infnet.eval source dict q in
  let _, s_daat = Inquery.Infnet.eval_daat source dict q in
  Alcotest.(check int) "same lookups" s_taat.Inquery.Infnet.record_lookups
    s_daat.Inquery.Infnet.record_lookups;
  Alcotest.(check int) "same postings" s_taat.Inquery.Infnet.postings_scored
    s_daat.Inquery.Infnet.postings_scored

let test_not_restriction_documented () =
  (* DAAT enumerates only docs containing a query term: under a pure
     #not those are exactly the docs the negation penalises, while the
     docs negation rewards (which merely lack the term; TAAT scores them
     0.6) are not enumerated. *)
  let taat, daat = both "#not( apple )" in
  Alcotest.(check (float 1e-9)) "taat rewards absent docs" 0.6 taat.(2);
  Alcotest.(check bool) "absent docs not enumerated" true
    (not (List.exists (fun s -> s.Inquery.Infnet.doc = 2) daat));
  (* What is enumerated still agrees with TAAT. *)
  List.iter
    (fun s ->
      Alcotest.(check (float 1e-9)) "agree" taat.(s.Inquery.Infnet.doc) s.Inquery.Infnet.belief)
    daat

let test_mixed_not () =
  (* #not beneath a positive term still works for enumerated docs. *)
  let taat, daat = both "#sum( banana #not( cherry ) )" in
  List.iter
    (fun s ->
      Alcotest.(check (float 1e-9)) "agree" taat.(s.Inquery.Infnet.doc) s.Inquery.Infnet.belief)
    daat;
  Alcotest.(check bool) "doc 3 enumerated (banana, no cherry)" true
    (List.exists (fun s -> s.Inquery.Infnet.doc = 3) daat)

let suite =
  List.map
    (fun q -> Alcotest.test_case ("agreement: " ^ q) `Quick (check_agreement q))
    queries
  @ [
      Alcotest.test_case "docs ascending" `Quick test_docs_ascending;
      Alcotest.test_case "oov only query" `Quick test_oov_only_query;
      Alcotest.test_case "stats comparable" `Quick test_stats_comparable;
      Alcotest.test_case "not restriction" `Quick test_not_restriction_documented;
      Alcotest.test_case "mixed not" `Quick test_mixed_not;
    ]
