(* Dynamic index maintenance over both backends. *)

let both_backends f =
  let vfs = Vfs.create () in
  f (Core.Live_index.create_btree vfs ~file:"live.btree" ());
  let vfs = Vfs.create () in
  f (Core.Live_index.create_mneme vfs ~file:"live.mneme" ())

let docs_of_results rs = List.map (fun r -> r.Inquery.Ranking.doc) rs

let test_add_and_search () =
  both_backends (fun live ->
      let d0 = Core.Live_index.add_document live "persistent object store" in
      let d1 = Core.Live_index.add_document live "inverted file index" in
      let d2 = Core.Live_index.add_document live "object oriented database index" in
      Alcotest.(check (list int)) "ids sequential" [ 0; 1; 2 ] [ d0; d1; d2 ];
      Alcotest.(check int) "count" 3 (Core.Live_index.document_count live);
      let hits = docs_of_results (Core.Live_index.search live "object") in
      Alcotest.(check bool) "d0 found" true (List.mem d0 hits);
      Alcotest.(check bool) "d2 found" true (List.mem d2 hits);
      Alcotest.(check bool) "d1 not found" false (List.mem d1 hits))

let test_incremental_visibility () =
  both_backends (fun live ->
      ignore (Core.Live_index.add_document live "alpha beta");
      Alcotest.(check int) "not yet visible" 0
        (List.length (Core.Live_index.search live "gamma"));
      let d = Core.Live_index.add_document live "gamma delta" in
      Alcotest.(check (list int)) "immediately searchable" [ d ]
        (docs_of_results (Core.Live_index.search live "gamma")))

let test_record_growth_across_documents () =
  both_backends (fun live ->
      for _ = 1 to 30 do
        ignore (Core.Live_index.add_document live "grow grow grow common")
      done;
      match Core.Live_index.term_record live "grow" with
      | None -> Alcotest.fail "record missing"
      | Some record ->
        let df, cf = Inquery.Postings.stats record in
        Alcotest.(check int) "df" 30 df;
        Alcotest.(check int) "cf" 90 cf)

let test_delete_document () =
  both_backends (fun live ->
      let d0 = Core.Live_index.add_document live "shared unique0" in
      let d1 = Core.Live_index.add_document live "shared unique1" in
      Alcotest.(check bool) "deleted" true (Core.Live_index.delete_document live d0);
      Alcotest.(check bool) "again false" false (Core.Live_index.delete_document live d0);
      Alcotest.(check int) "count" 1 (Core.Live_index.document_count live);
      Alcotest.(check bool) "gone from index" false
        (List.mem d0 (docs_of_results (Core.Live_index.search live "shared")));
      Alcotest.(check bool) "survivor intact" true
        (List.mem d1 (docs_of_results (Core.Live_index.search live "shared")));
      (* unique0's record disappeared entirely *)
      Alcotest.(check bool) "singleton record dropped" true
        (Core.Live_index.term_record live "unique0" = None);
      match Core.Live_index.term_record live "shared" with
      | Some record -> Alcotest.(check int) "df adjusted" 1 (fst (Inquery.Postings.stats record))
      | None -> Alcotest.fail "shared record lost")

let test_delete_then_add () =
  both_backends (fun live ->
      let d0 = Core.Live_index.add_document live "cycle word" in
      ignore (Core.Live_index.delete_document live d0);
      let d1 = Core.Live_index.add_document live "cycle word again" in
      Alcotest.(check bool) "new id" true (d1 > d0);
      Alcotest.(check (list int)) "only new doc" [ d1 ]
        (docs_of_results (Core.Live_index.search live "cycle")))

let test_explicit_doc_ids () =
  both_backends (fun live ->
      let d = Core.Live_index.add_document live ~doc_id:100 "explicit" in
      Alcotest.(check int) "honored" 100 d;
      Alcotest.(check bool) "monotone enforced" true
        (match Core.Live_index.add_document live ~doc_id:50 "late" with
        | _ -> false
        | exception Invalid_argument _ -> true);
      let d' = Core.Live_index.add_document live "implicit" in
      Alcotest.(check int) "continues past" 101 d')

let test_pool_migration_small_to_medium () =
  (* A term appearing once has a tiny record in the small pool; more
     occurrences push it over 12 bytes and it must migrate. *)
  let vfs = Vfs.create () in
  let live = Core.Live_index.create_mneme vfs ~file:"mig.mneme" () in
  ignore (Core.Live_index.add_document live "rare");
  (match Core.Live_index.term_record live "rare" with
  | Some r -> Alcotest.(check bool) "starts small" true (Bytes.length r <= 12)
  | None -> Alcotest.fail "missing");
  for _ = 1 to 20 do
    ignore (Core.Live_index.add_document live "rare rare rare")
  done;
  match Core.Live_index.term_record live "rare" with
  | Some r ->
    Alcotest.(check bool) "grew beyond small" true (Bytes.length r > 12);
    let df, _ = Inquery.Postings.stats r in
    Alcotest.(check int) "df correct after migration" 21 df
  | None -> Alcotest.fail "lost in migration"

let test_space_accounting () =
  let vfs = Vfs.create () in
  let live = Core.Live_index.create_mneme vfs ~file:"sp.mneme" () in
  for _ = 1 to 20 do
    ignore (Core.Live_index.add_document live "waste waste filler words here")
  done;
  (* Flush so the records live in on-disk segments; subsequent growth
     must then relocate objects, stranding their old extents — the
     paper's space-management problem. *)
  Core.Live_index.flush live;
  for _ = 1 to 20 do
    ignore (Core.Live_index.add_document live "waste waste filler words here")
  done;
  let s = Core.Live_index.space live in
  Alcotest.(check bool) "file grew" true (s.Core.Live_index.file_bytes > 0);
  Alcotest.(check bool) "stranded bytes observed" true (s.Core.Live_index.reclaimable_bytes > 0)

let test_stopwords_and_stemming () =
  let vfs = Vfs.create () in
  let live =
    Core.Live_index.create_btree ~stopwords:Inquery.Stopwords.default ~stem:true vfs
      ~file:"st.btree" ()
  in
  let d = Core.Live_index.add_document live "the running of the indexes" in
  Alcotest.(check bool) "stopword not indexed" true
    (Core.Live_index.term_record live "the" = None);
  Alcotest.(check (list int)) "stemmed query matches" [ d ]
    (docs_of_results (Core.Live_index.search live "index"));
  Alcotest.(check (list int)) "morphological variant matches" [ d ]
    (docs_of_results (Core.Live_index.search live "runs"))

let test_wrap_prepared_collection () =
  (* Adopt an index built by the batch pipeline and keep editing it. *)
  let model =
    Collections.Docmodel.make ~name:"wrap" ~n_docs:150 ~core_vocab:400 ~mean_doc_len:30.0
      ~seed:3 ()
  in
  let prepared = Core.Experiment.prepare model in
  let doc_lengths =
    List.init model.Collections.Docmodel.n_docs (fun d ->
        (d, Inquery.Indexer.doc_length prepared.Core.Experiment.indexer d))
  in
  let store = Mneme.Store.open_existing prepared.Core.Experiment.vfs "wrap.mneme" in
  List.iter
    (fun name ->
      Mneme.Store.attach_buffer (Mneme.Store.pool store name)
        (Mneme.Buffer_pool.create ~name ~capacity:200_000 ()))
    [ "small"; "medium"; "large" ];
  let live =
    Core.Live_index.wrap_mneme prepared.Core.Experiment.vfs ~store
      ~dict:prepared.Core.Experiment.dict ~doc_lengths
  in
  Alcotest.(check int) "adopted count" 150 (Core.Live_index.document_count live);
  let d = Core.Live_index.add_document live "freshdocumentword ba" in
  Alcotest.(check (list int)) "new doc searchable" [ d ]
    (docs_of_results (Core.Live_index.search live "freshdocumentword"));
  (* An old frequent term gained the new document. *)
  match Core.Live_index.term_record live "ba" with
  | Some record ->
    let found = ref false in
    Inquery.Postings.fold_docs record ~init:() ~f:(fun () ~doc ~tf:_ ->
        if doc = d then found := true);
    Alcotest.(check bool) "merged into existing record" true !found
  | None -> Alcotest.fail "ba record missing"

let test_flush_and_reopen_mneme () =
  let vfs = Vfs.create () in
  let live = Core.Live_index.create_mneme vfs ~file:"fl.mneme" () in
  ignore (Core.Live_index.add_document live "durable words");
  Core.Live_index.flush live;
  let store = Mneme.Store.open_existing vfs "fl.mneme" in
  Alcotest.(check bool) "objects persisted" true (Mneme.Store.object_count store > 0)

let test_backend_names () =
  both_backends (fun live ->
      Alcotest.(check bool) "name" true
        (List.mem (Core.Live_index.backend_name live) [ "btree"; "mneme" ]))

let test_avg_length_tracking () =
  both_backends (fun live ->
      ignore (Core.Live_index.add_document live "two words");
      ignore (Core.Live_index.add_document live "four words in here");
      Alcotest.(check (float 1e-9)) "avg" 3.0 (Core.Live_index.avg_doc_length live);
      ignore (Core.Live_index.delete_document live 0);
      Alcotest.(check (float 1e-9)) "after delete" 4.0 (Core.Live_index.avg_doc_length live))

let test_compact_live_index () =
  let vfs = Vfs.create () in
  let live = Core.Live_index.create_mneme vfs ~file:"cmp.mneme" () in
  for i = 0 to 29 do
    ignore (Core.Live_index.add_document live (Printf.sprintf "alpha beta doc%d words" i))
  done;
  Core.Live_index.flush live;
  for i = 30 to 59 do
    ignore (Core.Live_index.add_document live (Printf.sprintf "alpha beta doc%d words" i))
  done;
  for d = 0 to 9 do
    ignore (Core.Live_index.delete_document live d)
  done;
  Core.Live_index.flush live;
  let before = Core.Live_index.space live in
  Alcotest.(check bool) "stranded before" true (before.Core.Live_index.reclaimable_bytes > 0);
  Core.Live_index.compact live ~file:"cmp2.mneme";
  let after = Core.Live_index.space live in
  Alcotest.(check int) "reclaimed" 0 after.Core.Live_index.reclaimable_bytes;
  Alcotest.(check bool) "smaller file" true
    (after.Core.Live_index.file_bytes < before.Core.Live_index.file_bytes);
  (* The index keeps working, including further updates. *)
  let hits = docs_of_results (Core.Live_index.search ~top_k:100 live "alpha") in
  Alcotest.(check int) "surviving docs found" 50 (List.length hits);
  let d = Core.Live_index.add_document live "alpha fresh addition" in
  Alcotest.(check bool) "new doc searchable" true
    (List.mem d (docs_of_results (Core.Live_index.search ~top_k:200 live "fresh")))

let test_compact_btree_rejected () =
  let vfs = Vfs.create () in
  let live = Core.Live_index.create_btree vfs ~file:"cb.btree" () in
  Alcotest.(check bool) "rejected" true
    (match Core.Live_index.compact live ~file:"out" with
    | () -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "add and search" `Quick test_add_and_search;
    Alcotest.test_case "incremental visibility" `Quick test_incremental_visibility;
    Alcotest.test_case "record growth" `Quick test_record_growth_across_documents;
    Alcotest.test_case "delete document" `Quick test_delete_document;
    Alcotest.test_case "delete then add" `Quick test_delete_then_add;
    Alcotest.test_case "explicit doc ids" `Quick test_explicit_doc_ids;
    Alcotest.test_case "pool migration" `Quick test_pool_migration_small_to_medium;
    Alcotest.test_case "space accounting" `Quick test_space_accounting;
    Alcotest.test_case "stopwords and stemming" `Quick test_stopwords_and_stemming;
    Alcotest.test_case "wrap prepared collection" `Quick test_wrap_prepared_collection;
    Alcotest.test_case "flush and reopen" `Quick test_flush_and_reopen_mneme;
    Alcotest.test_case "backend names" `Quick test_backend_names;
    Alcotest.test_case "avg length tracking" `Quick test_avg_length_tracking;
    Alcotest.test_case "compact live index" `Quick test_compact_live_index;
    Alcotest.test_case "compact btree rejected" `Quick test_compact_btree_rejected;
  ]
