(* The ablation harness runs and produces structurally sound tables. *)

let ctx = lazy (Core.Ablation.create ~scale:0.1 ())

let row_count table =
  (* header + rule + rows + trailing newline *)
  List.length (String.split_on_char '\n' (Util.Tables.render table)) - 3

let test_policy_table () =
  let t = Core.Ablation.policy_table (Lazy.force ctx) in
  Alcotest.(check int) "3 policies x 2 reservation" 6 (row_count t);
  let out = Util.Tables.render t in
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " present") true (Str_find.contains out s))
    [ "lru"; "fifo"; "clock"; "on"; "off" ]

let test_medium_pseg_table () =
  let t = Core.Ablation.medium_pseg_table (Lazy.force ctx) in
  Alcotest.(check int) "five sizes" 5 (row_count t)

let test_threshold_table () =
  let t = Core.Ablation.threshold_table (Lazy.force ctx) in
  Alcotest.(check int) "six configurations" 6 (row_count t)

let test_daat_table () =
  let t = Core.Ablation.daat_table (Lazy.force ctx) in
  Alcotest.(check int) "two strategies" 2 (row_count t);
  let out = Util.Tables.render t in
  Alcotest.(check bool) "taat row" true (Str_find.contains out "term-at-a-time");
  Alcotest.(check bool) "daat row" true (Str_find.contains out "document-at-a-time")

let test_update_table () =
  let t = Core.Ablation.update_table ~adds:20 ~deletes:4 () in
  Alcotest.(check int) "two backends" 2 (row_count t);
  let out = Util.Tables.render t in
  Alcotest.(check bool) "btree row" true (Str_find.contains out "btree");
  Alcotest.(check bool) "mneme row" true (Str_find.contains out "mneme")

let test_journal_table () =
  let t = Core.Ablation.journal_table (Lazy.force ctx) in
  Alcotest.(check int) "two configurations" 2 (row_count t);
  let out = Util.Tables.render t in
  Alcotest.(check bool) "journaled row" true (Str_find.contains out "journaled");
  Alcotest.(check bool) "plain row" true (Str_find.contains out "no journal")

let test_btree_cache_table () =
  let t = Core.Ablation.btree_cache_table (Lazy.force ctx) in
  Alcotest.(check int) "four depths" 4 (row_count t)

let test_compression_table () =
  let t = Core.Ablation.compression_table (Lazy.force ctx) in
  Alcotest.(check int) "five schemes" 5 (row_count t);
  let out = Util.Tables.render t in
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " present") true (Str_find.contains out s))
    [ "v-byte"; "gamma"; "delta"; "Golomb" ]

let test_signature_table () =
  let t = Core.Ablation.signature_table (Lazy.force ctx) in
  Alcotest.(check int) "three methods" 3 (row_count t);
  let out = Util.Tables.render t in
  Alcotest.(check bool) "inverted row" true (Str_find.contains out "inverted file");
  Alcotest.(check bool) "bit-sliced row" true (Str_find.contains out "bit-sliced")

let suite =
  [
    Alcotest.test_case "policy table" `Quick test_policy_table;
    Alcotest.test_case "medium pseg table" `Quick test_medium_pseg_table;
    Alcotest.test_case "threshold table" `Quick test_threshold_table;
    Alcotest.test_case "daat table" `Quick test_daat_table;
    Alcotest.test_case "update table" `Slow test_update_table;
    Alcotest.test_case "journal table" `Quick test_journal_table;
    Alcotest.test_case "btree cache table" `Quick test_btree_cache_table;
    Alcotest.test_case "compression table" `Quick test_compression_table;
    Alcotest.test_case "signature table" `Quick test_signature_table;
  ]
