(* The open-chaining hash dictionary. *)

let test_intern_assigns_dense_ids () =
  let d = Inquery.Dictionary.create () in
  let a = Inquery.Dictionary.intern d "alpha" in
  let b = Inquery.Dictionary.intern d "beta" in
  Alcotest.(check int) "first id" 0 a.Inquery.Dictionary.id;
  Alcotest.(check int) "second id" 1 b.Inquery.Dictionary.id;
  Alcotest.(check int) "size" 2 (Inquery.Dictionary.size d)

let test_intern_idempotent () =
  let d = Inquery.Dictionary.create () in
  let a = Inquery.Dictionary.intern d "term" in
  let a' = Inquery.Dictionary.intern d "term" in
  Alcotest.(check bool) "same entry" true (a == a');
  Alcotest.(check int) "size" 1 (Inquery.Dictionary.size d)

let test_find () =
  let d = Inquery.Dictionary.create () in
  ignore (Inquery.Dictionary.intern d "present");
  Alcotest.(check bool) "found" true (Inquery.Dictionary.find d "present" <> None);
  Alcotest.(check bool) "missing" true (Inquery.Dictionary.find d "absent" = None)

let test_find_by_id () =
  let d = Inquery.Dictionary.create () in
  let e = Inquery.Dictionary.intern d "x" in
  (match Inquery.Dictionary.find_by_id d e.Inquery.Dictionary.id with
  | Some e' -> Alcotest.(check string) "term" "x" e'.Inquery.Dictionary.term
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "out of range" true (Inquery.Dictionary.find_by_id d 99 = None);
  Alcotest.(check bool) "negative" true (Inquery.Dictionary.find_by_id d (-1) = None)

let test_statistics_mutation () =
  let d = Inquery.Dictionary.create () in
  let e = Inquery.Dictionary.intern d "t" in
  Alcotest.(check int) "df starts 0" 0 e.Inquery.Dictionary.df;
  Alcotest.(check int) "locator unset" (-1) e.Inquery.Dictionary.locator;
  e.Inquery.Dictionary.df <- 5;
  e.Inquery.Dictionary.cf <- 17;
  e.Inquery.Dictionary.locator <- 1234;
  match Inquery.Dictionary.find d "t" with
  | Some e' ->
    Alcotest.(check int) "df" 5 e'.Inquery.Dictionary.df;
    Alcotest.(check int) "cf" 17 e'.Inquery.Dictionary.cf;
    Alcotest.(check int) "locator" 1234 e'.Inquery.Dictionary.locator
  | None -> Alcotest.fail "lost"

let test_growth () =
  let d = Inquery.Dictionary.create ~initial_buckets:16 () in
  let n = 5000 in
  for i = 0 to n - 1 do
    ignore (Inquery.Dictionary.intern d (Printf.sprintf "term%d" i))
  done;
  Alcotest.(check int) "all interned" n (Inquery.Dictionary.size d);
  Alcotest.(check bool) "table grew" true (Inquery.Dictionary.bucket_count d > 16);
  (* Every term still findable after rehashing. *)
  for i = 0 to n - 1 do
    if Inquery.Dictionary.find d (Printf.sprintf "term%d" i) = None then
      Alcotest.fail (Printf.sprintf "lost term%d" i)
  done

let test_iter_in_id_order () =
  let d = Inquery.Dictionary.create () in
  List.iter (fun w -> ignore (Inquery.Dictionary.intern d w)) [ "c"; "a"; "b" ];
  let order = ref [] in
  Inquery.Dictionary.iter d (fun e -> order := e.Inquery.Dictionary.term :: !order);
  Alcotest.(check (list string)) "intern order" [ "c"; "a"; "b" ] (List.rev !order)

let test_serialize_roundtrip () =
  let d = Inquery.Dictionary.create () in
  List.iteri
    (fun i w ->
      let e = Inquery.Dictionary.intern d w in
      e.Inquery.Dictionary.df <- i * 2;
      e.Inquery.Dictionary.cf <- (i * 10) + 1;
      e.Inquery.Dictionary.locator <- (if i mod 2 = 0 then -1 else i * 100))
    [ "one"; "two"; "three"; "with spaces?" ];
  let d' = Inquery.Dictionary.deserialize (Inquery.Dictionary.serialize d) in
  Alcotest.(check int) "size" (Inquery.Dictionary.size d) (Inquery.Dictionary.size d');
  Inquery.Dictionary.iter d (fun e ->
      match Inquery.Dictionary.find d' e.Inquery.Dictionary.term with
      | None -> Alcotest.fail ("lost " ^ e.Inquery.Dictionary.term)
      | Some e' ->
        Alcotest.(check int) "id" e.Inquery.Dictionary.id e'.Inquery.Dictionary.id;
        Alcotest.(check int) "df" e.Inquery.Dictionary.df e'.Inquery.Dictionary.df;
        Alcotest.(check int) "cf" e.Inquery.Dictionary.cf e'.Inquery.Dictionary.cf;
        Alcotest.(check int) "locator" e.Inquery.Dictionary.locator e'.Inquery.Dictionary.locator)

let test_deserialize_corrupt () =
  Alcotest.(check bool) "corrupt raises" true
    (match Inquery.Dictionary.deserialize (Bytes.make 3 'x') with
    | _ -> false
    | exception Failure _ -> true)

let test_empty_string_key () =
  let d = Inquery.Dictionary.create () in
  let e = Inquery.Dictionary.intern d "" in
  Alcotest.(check int) "id" 0 e.Inquery.Dictionary.id;
  Alcotest.(check bool) "findable" true (Inquery.Dictionary.find d "" <> None)

let prop_model =
  QCheck.Test.make ~name:"dictionary matches Hashtbl model" ~count:100
    QCheck.(list (string_of_size (QCheck.Gen.int_range 0 8)))
    (fun words ->
      let d = Inquery.Dictionary.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun w ->
          let e = Inquery.Dictionary.intern d w in
          if not (Hashtbl.mem model w) then Hashtbl.add model w e.Inquery.Dictionary.id)
        words;
      Inquery.Dictionary.size d = Hashtbl.length model
      && Hashtbl.fold
           (fun w id acc ->
             acc
             && match Inquery.Dictionary.find d w with
                | Some e -> e.Inquery.Dictionary.id = id
                | None -> false)
           model true)

let suite =
  [
    Alcotest.test_case "dense ids" `Quick test_intern_assigns_dense_ids;
    Alcotest.test_case "intern idempotent" `Quick test_intern_idempotent;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "find_by_id" `Quick test_find_by_id;
    Alcotest.test_case "statistics mutation" `Quick test_statistics_mutation;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "iter in id order" `Quick test_iter_in_id_order;
    Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
    Alcotest.test_case "deserialize corrupt" `Quick test_deserialize_corrupt;
    Alcotest.test_case "empty string key" `Quick test_empty_string_key;
    QCheck_alcotest.to_alcotest prop_model;
  ]
