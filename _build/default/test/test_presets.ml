(* Calibrated collection presets. *)

let test_paper_document_counts () =
  Alcotest.(check int) "cacm" 3204 (Collections.Presets.cacm ()).Collections.Docmodel.n_docs;
  Alcotest.(check int) "legal" 11953 (Collections.Presets.legal ()).Collections.Docmodel.n_docs;
  (* TIPSTER presets are the documented ~1/10 substitution. *)
  Alcotest.(check int) "tipster1" 51089
    (Collections.Presets.tipster1 ()).Collections.Docmodel.n_docs;
  Alcotest.(check int) "tipster" 74236
    (Collections.Presets.tipster ()).Collections.Docmodel.n_docs

let test_scale () =
  let m = Collections.Presets.legal ~scale:0.1 () in
  Alcotest.(check int) "scaled docs" 1195 m.Collections.Docmodel.n_docs;
  let floor = Collections.Presets.cacm ~scale:0.000001 () in
  Alcotest.(check int) "floor" 64 floor.Collections.Docmodel.n_docs

let test_all_models_order () =
  let names =
    List.map (fun m -> m.Collections.Docmodel.name) (Collections.Presets.all_models ())
  in
  Alcotest.(check (list string)) "paper order" [ "cacm"; "legal"; "tipster1"; "tipster" ] names

let test_find () =
  Alcotest.(check string) "by name" "legal"
    (Collections.Presets.find "legal").Collections.Docmodel.name;
  Alcotest.(check bool) "unknown" true
    (match Collections.Presets.find "web" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_query_set_inventory () =
  let sets model = List.map fst (Collections.Presets.query_sets model) in
  Alcotest.(check (list string)) "cacm has three" [ "1"; "2"; "3" ]
    (sets (Collections.Presets.cacm ()));
  Alcotest.(check (list string)) "legal has two" [ "1"; "2" ]
    (sets (Collections.Presets.legal ()));
  Alcotest.(check (list string)) "tipster has one" [ "1" ]
    (sets (Collections.Presets.tipster ()))

let test_tipster_prefix_property () =
  (* TIPSTER 1 is part 1 of TIPSTER: same model/seed, fewer documents,
     so the generated document streams agree on the shared prefix. *)
  let small = Collections.Presets.tipster1 ~scale:0.002 () in
  let big = Collections.Presets.tipster ~scale:0.002 () in
  let take n seq = List.of_seq (Seq.take n seq) in
  let d1 = take 20 (Collections.Synth.documents small) in
  let d2 = take 20 (Collections.Synth.documents big) in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "same doc" true
        (a.Collections.Synth.terms = b.Collections.Synth.terms))
    d1 d2

let test_tipster_sets_shared () =
  (* Both TIPSTER collections use the same query set. *)
  let q1 =
    Collections.Querygen.generate
      (Collections.Presets.tipster1 ())
      (List.assoc "1" (Collections.Presets.query_sets (Collections.Presets.tipster1 ())))
  in
  let q2 =
    Collections.Querygen.generate
      (Collections.Presets.tipster ())
      (List.assoc "1" (Collections.Presets.query_sets (Collections.Presets.tipster ())))
  in
  Alcotest.(check bool) "identical queries" true (q1 = q2)

let test_cacm_sets_1_2_same_terms () =
  let model = Collections.Presets.cacm () in
  let sets = Collections.Presets.query_sets model in
  let terms set =
    Collections.Querygen.generate model (List.assoc set sets)
    |> List.concat_map (fun q -> Inquery.Query.terms (Inquery.Query.parse_exn q))
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "set 1 and 2 vocabulary" (terms "1") (terms "2")

let suite =
  [
    Alcotest.test_case "paper document counts" `Quick test_paper_document_counts;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "all models order" `Quick test_all_models_order;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "query set inventory" `Quick test_query_set_inventory;
    Alcotest.test_case "tipster prefix property" `Quick test_tipster_prefix_property;
    Alcotest.test_case "tipster sets shared" `Quick test_tipster_sets_shared;
    Alcotest.test_case "cacm sets share terms" `Quick test_cacm_sets_1_2_same_terms;
  ]
