test/test_policy.ml: Alcotest Buffer List Mneme
