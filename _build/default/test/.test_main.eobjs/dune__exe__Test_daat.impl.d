test/test_daat.ml: Alcotest Array Hashtbl Inquery List Printf Seq
