test/test_live_index.ml: Alcotest Bytes Collections Core Inquery List Mneme Printf Vfs
