test/test_bitio.ml: Alcotest Bytes Char List QCheck QCheck_alcotest Util
