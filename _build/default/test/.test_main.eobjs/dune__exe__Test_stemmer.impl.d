test/test_stemmer.ml: Alcotest Inquery List Printf QCheck QCheck_alcotest String
