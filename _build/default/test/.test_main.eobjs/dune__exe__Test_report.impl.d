test/test_report.ml: Alcotest Collections Core Lazy List Printf
