test/test_chain.ml: Alcotest Bytes Char List Mneme Printf Vfs
