test/test_analysis.ml: Alcotest Collections Inquery Lazy List Printf Util
