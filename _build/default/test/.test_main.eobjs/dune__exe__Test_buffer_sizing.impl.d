test/test_buffer_sizing.ml: Alcotest Core
