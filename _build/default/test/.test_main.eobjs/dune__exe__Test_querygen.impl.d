test/test_querygen.ml: Alcotest Collections Inquery List Printf String
