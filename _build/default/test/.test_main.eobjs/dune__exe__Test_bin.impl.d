test/test_bin.ml: Alcotest Buffer Bytes Char Util
