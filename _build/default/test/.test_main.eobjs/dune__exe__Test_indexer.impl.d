test/test_indexer.ml: Alcotest Fun Inquery List Seq
