test/test_stopwords.ml: Alcotest Inquery List
