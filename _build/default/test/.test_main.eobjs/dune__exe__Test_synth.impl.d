test/test_synth.ml: Alcotest Array Collections Hashtbl Inquery List Printf Seq String
