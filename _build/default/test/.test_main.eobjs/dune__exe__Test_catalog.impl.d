test/test_catalog.ml: Alcotest Bytes Collections Core Inquery List Mneme Vfs
