test/test_journal.ml: Alcotest Buffer Bytes List Mneme Printf String Util Vfs
