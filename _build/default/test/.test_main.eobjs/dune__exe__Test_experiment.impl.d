test/test_experiment.ml: Alcotest Array Collections Core Lazy List Mneme Printf
