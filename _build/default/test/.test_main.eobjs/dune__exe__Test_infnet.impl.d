test/test_infnet.ml: Alcotest Array Float Hashtbl Inquery List Printf Seq
