test/test_eval.ml: Alcotest Inquery
