test/test_properties.ml: Array Buffer Bytes Char Core Hashtbl Inquery List Mneme Printf QCheck QCheck_alcotest String Vfs
