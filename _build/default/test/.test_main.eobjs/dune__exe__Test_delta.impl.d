test/test_delta.ml: Alcotest Buffer Bytes List QCheck QCheck_alcotest Util
