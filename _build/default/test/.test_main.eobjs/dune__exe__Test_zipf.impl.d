test/test_zipf.ml: Alcotest Array Float Printf Util
