test/test_federation.ml: Alcotest Bytes List Mneme Vfs
