test/test_btree.ml: Alcotest Array Btree Bytes Hashtbl List Printf QCheck QCheck_alcotest Seq Util Vfs
