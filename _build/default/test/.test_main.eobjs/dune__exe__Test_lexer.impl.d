test/test_lexer.ml: Alcotest Inquery List Printf String
