test/test_presets.ml: Alcotest Collections Inquery List Seq
