test/test_paper.ml: Alcotest Core Lazy List Printf Str_find String Util
