test/test_dictionary.ml: Alcotest Bytes Hashtbl Inquery List Printf QCheck QCheck_alcotest
