test/test_oid.ml: Alcotest List Mneme
