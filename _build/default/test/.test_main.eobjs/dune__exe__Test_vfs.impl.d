test/test_vfs.ml: Alcotest Bytes List QCheck QCheck_alcotest String Vfs
