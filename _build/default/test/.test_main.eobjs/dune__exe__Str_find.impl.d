test/str_find.ml: String
