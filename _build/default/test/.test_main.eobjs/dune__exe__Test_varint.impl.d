test/test_varint.ml: Alcotest Buffer Bytes List Printf QCheck QCheck_alcotest Util
