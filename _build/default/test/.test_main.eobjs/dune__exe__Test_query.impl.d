test/test_query.ml: Alcotest Inquery List
