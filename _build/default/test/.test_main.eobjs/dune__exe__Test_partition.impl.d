test/test_partition.ml: Alcotest Core
