test/test_engine.ml: Alcotest Array Collections Core Inquery Lazy List Printf Vfs
