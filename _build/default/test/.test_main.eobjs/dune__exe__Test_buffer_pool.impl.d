test/test_buffer_pool.ml: Alcotest Bytes Char List Mneme QCheck QCheck_alcotest
