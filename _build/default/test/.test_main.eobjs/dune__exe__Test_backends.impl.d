test/test_backends.ml: Alcotest Btree Bytes Collections Core Inquery List Mneme Option Vfs
