test/test_ablation.ml: Alcotest Core Lazy List Str_find String Util
