test/test_check.ml: Alcotest Bytes Format List Mneme Str_find Vfs
