test/test_ranking.ml: Alcotest Array Inquery List
