test/test_store.ml: Alcotest Bytes Char List Mneme Printf QCheck QCheck_alcotest Vfs
