test/test_proximity.ml: Alcotest Array Hashtbl Inquery List Printf Seq
