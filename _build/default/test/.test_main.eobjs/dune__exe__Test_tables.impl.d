test/test_tables.ml: Alcotest List Str_find String Util
