test/test_postings.ml: Alcotest Bytes Inquery List QCheck QCheck_alcotest
