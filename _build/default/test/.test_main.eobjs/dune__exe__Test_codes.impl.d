test/test_codes.ml: Alcotest Bytes Char List Printf QCheck QCheck_alcotest Util
