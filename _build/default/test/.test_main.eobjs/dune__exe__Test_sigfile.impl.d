test/test_sigfile.ml: Alcotest Array Inquery List Printf Seq String Vfs
