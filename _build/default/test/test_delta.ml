(* Gap coding of ascending sequences. *)

let test_encode_basic () =
  Alcotest.(check (list int)) "gaps" [ 5; 2; 10 ] (Util.Delta.encode [ 5; 7; 17 ]);
  Alcotest.(check (list int)) "empty" [] (Util.Delta.encode []);
  Alcotest.(check (list int)) "single" [ 0 ] (Util.Delta.encode [ 0 ])

let test_decode_inverse () =
  let xs = [ 0; 1; 2; 50; 51; 1000 ] in
  Alcotest.(check (list int)) "inverse" xs (Util.Delta.decode (Util.Delta.encode xs))

let test_not_increasing_rejected () =
  Alcotest.check_raises "equal adjacent"
    (Invalid_argument "Delta.encode: not strictly increasing") (fun () ->
      ignore (Util.Delta.encode [ 1; 1 ]));
  Alcotest.check_raises "decreasing" (Invalid_argument "Delta.encode: not strictly increasing")
    (fun () -> ignore (Util.Delta.encode [ 5; 3 ]));
  Alcotest.check_raises "negative head" (Invalid_argument "Delta.encode: negative value")
    (fun () -> ignore (Util.Delta.encode [ -1; 3 ]))

let test_binary_roundtrip () =
  let xs = [ 3; 9; 10; 300; 70000 ] in
  let buf = Buffer.create 16 in
  Util.Delta.encode_into buf xs;
  let b = Buffer.to_bytes buf in
  let decoded, pos = Util.Delta.decode_from b ~pos:0 ~count:(List.length xs) in
  Alcotest.(check (list int)) "roundtrip" xs decoded;
  Alcotest.(check int) "all consumed" (Bytes.length b) pos

let test_binary_empty () =
  let buf = Buffer.create 4 in
  Util.Delta.encode_into buf [];
  Alcotest.(check int) "no bytes" 0 (Buffer.length buf);
  let decoded, pos = Util.Delta.decode_from (Bytes.create 0) ~pos:0 ~count:0 in
  Alcotest.(check (list int)) "empty decode" [] decoded;
  Alcotest.(check int) "pos" 0 pos

let ascending_gen =
  QCheck.Gen.(
    list_size (int_bound 50) (int_bound 1000)
    |> map (fun gaps ->
           List.fold_left (fun acc g -> match acc with
             | [] -> [ g ]
             | prev :: _ -> (prev + g + 1) :: acc) [] gaps
           |> List.rev))

let prop_roundtrip =
  QCheck.Test.make ~name:"delta roundtrip (random ascending)" ~count:300
    (QCheck.make ascending_gen)
    (fun xs ->
      Util.Delta.decode (Util.Delta.encode xs) = xs
      &&
      let buf = Buffer.create 16 in
      Util.Delta.encode_into buf xs;
      fst (Util.Delta.decode_from (Buffer.to_bytes buf) ~pos:0 ~count:(List.length xs)) = xs)

let suite =
  [
    Alcotest.test_case "encode basic" `Quick test_encode_basic;
    Alcotest.test_case "decode inverse" `Quick test_decode_inverse;
    Alcotest.test_case "rejects bad input" `Quick test_not_increasing_rejected;
    Alcotest.test_case "binary roundtrip" `Quick test_binary_roundtrip;
    Alcotest.test_case "binary empty" `Quick test_binary_empty;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
