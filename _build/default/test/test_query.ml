(* Query language parsing and tree utilities. *)

let parse s =
  match Inquery.Query.parse s with
  | Ok q -> q
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)

let test_bare_term () =
  Alcotest.(check bool) "term" true (parse "retrieval" = Inquery.Query.Term "retrieval")

let test_implicit_sum () =
  match parse "information retrieval system" with
  | Inquery.Query.Sum [ Term "information"; Term "retrieval"; Term "system" ] -> ()
  | q -> Alcotest.fail ("unexpected: " ^ Inquery.Query.to_string q)

let test_operators () =
  (match parse "#and( a b )" with
  | Inquery.Query.And [ Term "a"; Term "b" ] -> ()
  | q -> Alcotest.fail (Inquery.Query.to_string q));
  (match parse "#or( a #not( b ) )" with
  | Inquery.Query.Or [ Term "a"; Not (Term "b") ] -> ()
  | q -> Alcotest.fail (Inquery.Query.to_string q));
  (match parse "#max( a b c )" with
  | Inquery.Query.Max [ _; _; _ ] -> ()
  | q -> Alcotest.fail (Inquery.Query.to_string q));
  match parse "#sum( a )" with
  | Inquery.Query.Sum [ Term "a" ] -> ()
  | q -> Alcotest.fail (Inquery.Query.to_string q)

let test_wsum () =
  match parse "#wsum( 2 apple 1.5 #or( b c ) )" with
  | Inquery.Query.Wsum [ (2.0, Term "apple"); (1.5, Or _) ] -> ()
  | q -> Alcotest.fail (Inquery.Query.to_string q)

let test_phrase () =
  match parse "#phrase( information retrieval )" with
  | Inquery.Query.Phrase [ "information"; "retrieval" ] -> ()
  | q -> Alcotest.fail (Inquery.Query.to_string q)

let test_nesting () =
  match parse "#and( #or( a b ) #sum( c #phrase( d e ) ) )" with
  | Inquery.Query.And [ Or _; Sum [ Term "c"; Phrase [ "d"; "e" ] ] ] -> ()
  | q -> Alcotest.fail (Inquery.Query.to_string q)

let test_case_folding () =
  Alcotest.(check bool) "lowercased" true (parse "ReTrIeVaL" = Inquery.Query.Term "retrieval")

let test_numeric_term () =
  (* A number at top level is a term (e.g. a year), not a weight. *)
  Alcotest.(check bool) "year" true (parse "1994" = Inquery.Query.Term "1994")

let test_errors () =
  let fails s =
    match Inquery.Query.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (fails "");
  Alcotest.(check bool) "unbalanced" true (fails "#and( a");
  Alcotest.(check bool) "stray close" true (fails "a )");
  Alcotest.(check bool) "unknown op" true (fails "#frobnicate( a )");
  Alcotest.(check bool) "not arity" true (fails "#not( a b )");
  Alcotest.(check bool) "op without paren" true (fails "#and a b");
  Alcotest.(check bool) "phrase nesting" true (fails "#phrase( a #or( b c ) )");
  Alcotest.(check bool) "empty phrase" true (fails "#phrase( )")

let test_parse_exn () =
  Alcotest.(check bool) "raises" true
    (match Inquery.Query.parse_exn "#and(" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_terms_dedup_ordered () =
  let q = parse "#sum( b a #phrase( c b ) #wsum( 2 a 1 d ) )" in
  Alcotest.(check (list string)) "first-appearance order" [ "b"; "a"; "c"; "d" ]
    (Inquery.Query.terms q)

let test_node_count () =
  Alcotest.(check int) "term" 1 (Inquery.Query.node_count (parse "a"));
  Alcotest.(check int) "sum of three" 4 (Inquery.Query.node_count (parse "#sum( a b c )"));
  Alcotest.(check int) "phrase counts members" 3
    (Inquery.Query.node_count (parse "#phrase( a b )"))

let test_to_string_roundtrip () =
  List.iter
    (fun s ->
      let q = parse s in
      let q' = parse (Inquery.Query.to_string q) in
      Alcotest.(check bool) ("reparse " ^ s) true (q = q'))
    [
      "a";
      "#sum( a b )";
      "#and( #or( a b ) c )";
      "#wsum( 2 a 1 b )";
      "#not( x )";
      "#phrase( a b c )";
      "#max( a #and( b c ) )";
    ]

let test_commas_and_whitespace () =
  match parse " #sum(  a,\n\tb ) " with
  | Inquery.Query.Sum [ Term "a"; Term "b" ] -> ()
  | q -> Alcotest.fail (Inquery.Query.to_string q)

let suite =
  [
    Alcotest.test_case "bare term" `Quick test_bare_term;
    Alcotest.test_case "implicit sum" `Quick test_implicit_sum;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "wsum" `Quick test_wsum;
    Alcotest.test_case "phrase" `Quick test_phrase;
    Alcotest.test_case "nesting" `Quick test_nesting;
    Alcotest.test_case "case folding" `Quick test_case_folding;
    Alcotest.test_case "numeric term" `Quick test_numeric_term;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "parse_exn" `Quick test_parse_exn;
    Alcotest.test_case "terms dedup" `Quick test_terms_dedup_ordered;
    Alcotest.test_case "node count" `Quick test_node_count;
    Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip;
    Alcotest.test_case "commas and whitespace" `Quick test_commas_and_whitespace;
  ]
