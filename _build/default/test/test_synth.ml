(* Synthetic collection generation: determinism and statistical shape. *)

let tiny =
  Collections.Docmodel.make ~name:"tiny" ~n_docs:200 ~core_vocab:500 ~mean_doc_len:40.0
    ~hapax_prob:0.02 ~seed:99 ()

let test_term_naming () =
  Alcotest.(check string) "rank 1 short" "ba" (Collections.Synth.core_term ~rank:1);
  Alcotest.(check bool) "ranks distinct" true
    (Collections.Synth.core_term ~rank:1 <> Collections.Synth.core_term ~rank:2);
  Alcotest.(check bool) "high rank longer" true
    (String.length (Collections.Synth.core_term ~rank:100_000)
    > String.length (Collections.Synth.core_term ~rank:1));
  Alcotest.(check bool) "rank 0 rejected" true
    (match Collections.Synth.core_term ~rank:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_hapax_prefix_disjoint () =
  (* Hapax words start with 'q'; core words never do. *)
  for n = 0 to 200 do
    Alcotest.(check char) "hapax prefix" 'q' (Collections.Synth.hapax_term n).[0]
  done;
  for rank = 1 to 500 do
    Alcotest.(check bool) "core avoids q" true ((Collections.Synth.core_term ~rank).[0] <> 'q')
  done

let test_document_count_and_ids () =
  let docs = List.of_seq (Collections.Synth.documents tiny) in
  Alcotest.(check int) "count" 200 (List.length docs);
  List.iteri
    (fun i d -> Alcotest.(check int) "sequential ids" i d.Collections.Synth.id)
    docs

let test_determinism () =
  let run () =
    Collections.Synth.documents tiny |> Seq.map (fun d -> d.Collections.Synth.terms)
    |> List.of_seq
  in
  Alcotest.(check bool) "replayable" true (run () = run ())

let test_min_length_respected () =
  Seq.iter
    (fun d ->
      Alcotest.(check bool) "length floor" true
        (Array.length d.Collections.Synth.terms >= tiny.Collections.Docmodel.min_doc_len))
    (Collections.Synth.documents tiny)

let test_mean_length_calibrated () =
  let total =
    Seq.fold_left
      (fun acc d -> acc + Array.length d.Collections.Synth.terms)
      0 (Collections.Synth.documents tiny)
  in
  let mean = float_of_int total /. 200.0 in
  Alcotest.(check bool)
    (Printf.sprintf "mean near 40 (got %.1f)" mean)
    true
    (mean > 30.0 && mean < 50.0)

let test_bytes_positive () =
  Seq.iter
    (fun d -> Alcotest.(check bool) "bytes" true (d.Collections.Synth.bytes > 0))
    (Collections.Synth.documents tiny)

let test_document_text () =
  let doc = { Collections.Synth.id = 0; terms = [| "a"; "b"; "c" |]; bytes = 6 } in
  Alcotest.(check string) "joined" "a b c" (Collections.Synth.document_text doc)

let test_zipf_shape () =
  (* The rank-1 core term occurs far more often than a mid-rank term. *)
  let counts = Hashtbl.create 1000 in
  Seq.iter
    (fun d ->
      Array.iter
        (fun t ->
          let c = try Hashtbl.find counts t with Not_found -> 0 in
          Hashtbl.replace counts t (c + 1))
        d.Collections.Synth.terms)
    (Collections.Synth.documents tiny);
  let count t = try Hashtbl.find counts t with Not_found -> 0 in
  let top = count (Collections.Synth.core_term ~rank:1) in
  let mid = count (Collections.Synth.core_term ~rank:100) in
  Alcotest.(check bool)
    (Printf.sprintf "zipf head (top %d, mid %d)" top mid)
    true (top > 4 * mid)

let test_hapax_occur_once () =
  let counts = Hashtbl.create 1000 in
  Seq.iter
    (fun d ->
      Array.iter
        (fun t ->
          if t.[0] = 'q' then begin
            let c = try Hashtbl.find counts t with Not_found -> 0 in
            Hashtbl.replace counts t (c + 1)
          end)
        d.Collections.Synth.terms)
    (Collections.Synth.documents tiny);
  Alcotest.(check bool) "hapax exist" true (Hashtbl.length counts > 0);
  Hashtbl.iter
    (fun t c -> Alcotest.(check int) (t ^ " occurs once") 1 c)
    counts

let test_build_index () =
  let ix = Collections.Synth.build_index tiny in
  Alcotest.(check int) "docs" 200 (Inquery.Indexer.document_count ix);
  Alcotest.(check bool) "terms" true (Inquery.Indexer.term_count ix > 300);
  Alcotest.(check bool) "avg length" true (Inquery.Indexer.avg_doc_length ix > 20.0)

let test_stop_top_resampling () =
  let stopped =
    Collections.Docmodel.make ~name:"s" ~n_docs:100 ~core_vocab:500 ~mean_doc_len:40.0
      ~stop_top:3 ~hapax_prob:0.0 ~seed:7 ()
  in
  let top3 =
    [ Collections.Synth.core_term ~rank:1; Collections.Synth.core_term ~rank:2;
      Collections.Synth.core_term ~rank:3 ]
  in
  let saw_top = ref 0 in
  Seq.iter
    (fun d ->
      Array.iter (fun t -> if List.mem t top3 then incr saw_top) d.Collections.Synth.terms)
    (Collections.Synth.documents stopped);
  (* Resampling makes withheld head ranks rare (bounded retries allow a
     trickle, not a flood). *)
  Alcotest.(check bool) (Printf.sprintf "withheld (saw %d)" !saw_top) true (!saw_top < 20)

let suite =
  [
    Alcotest.test_case "term naming" `Quick test_term_naming;
    Alcotest.test_case "hapax prefix disjoint" `Quick test_hapax_prefix_disjoint;
    Alcotest.test_case "document count and ids" `Quick test_document_count_and_ids;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "min length" `Quick test_min_length_respected;
    Alcotest.test_case "mean length calibrated" `Quick test_mean_length_calibrated;
    Alcotest.test_case "bytes positive" `Quick test_bytes_positive;
    Alcotest.test_case "document text" `Quick test_document_text;
    Alcotest.test_case "zipf shape" `Quick test_zipf_shape;
    Alcotest.test_case "hapax occur once" `Quick test_hapax_occur_once;
    Alcotest.test_case "build index" `Quick test_build_index;
    Alcotest.test_case "stop_top resampling" `Quick test_stop_top_resampling;
  ]
