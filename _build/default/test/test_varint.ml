(* v-byte coding: exact values, sizes, error paths, and random
   roundtrips. *)

let check_roundtrip values () =
  let b = Util.Varint.encode_list values in
  Alcotest.(check (list int))
    "roundtrip" values
    (Util.Varint.decode_all b ~pos:0 ~len:(Bytes.length b))

let test_single_byte_values () =
  List.iter
    (fun v ->
      let buf = Buffer.create 4 in
      Util.Varint.encode buf v;
      Alcotest.(check int) (Printf.sprintf "%d is one byte" v) 1 (Buffer.length buf))
    [ 0; 1; 64; 127 ]

let test_boundaries () =
  List.iter
    (fun (v, expect) ->
      Alcotest.(check int) (Printf.sprintf "size of %d" v) expect (Util.Varint.encoded_size v))
    [ (0, 1); (127, 1); (128, 2); (16383, 2); (16384, 3); (1 lsl 21, 4); (max_int, 9) ]

let test_encoded_size_matches_encode () =
  List.iter
    (fun v ->
      let buf = Buffer.create 8 in
      Util.Varint.encode buf v;
      Alcotest.(check int) "size prediction" (Buffer.length buf) (Util.Varint.encoded_size v))
    [ 0; 5; 127; 128; 300; 100000; 1 lsl 40; max_int ]

let test_negative_rejected () =
  Alcotest.check_raises "encode" (Invalid_argument "Varint.encode: negative") (fun () ->
      Util.Varint.encode (Buffer.create 1) (-1));
  Alcotest.check_raises "encoded_size" (Invalid_argument "Varint.encoded_size: negative")
    (fun () -> ignore (Util.Varint.encoded_size (-5)))

let test_truncated_input () =
  (* A continuation byte with nothing after it. *)
  let b = Bytes.make 1 '\x01' in
  Alcotest.check_raises "truncated" (Invalid_argument "Varint.decode: truncated input")
    (fun () -> ignore (Util.Varint.decode b ~pos:0))

let test_decode_position () =
  let b = Util.Varint.encode_list [ 300; 7 ] in
  let v1, pos = Util.Varint.decode b ~pos:0 in
  let v2, pos' = Util.Varint.decode b ~pos in
  Alcotest.(check int) "first" 300 v1;
  Alcotest.(check int) "second" 7 v2;
  Alcotest.(check int) "consumed all" (Bytes.length b) pos'

let test_fold_skips_list_building () =
  let values = [ 1; 128; 99; 0; 1 lsl 30 ] in
  let b = Util.Varint.encode_list values in
  let sum = Util.Varint.fold b ~pos:0 ~len:(Bytes.length b) ~init:0 ~f:( + ) in
  Alcotest.(check int) "fold sum" (List.fold_left ( + ) 0 values) sum

let test_fold_range_check () =
  let b = Util.Varint.encode_list [ 1 ] in
  Alcotest.check_raises "range" (Invalid_argument "Varint.fold: range out of bounds") (fun () ->
      ignore (Util.Varint.fold b ~pos:0 ~len:(Bytes.length b + 1) ~init:0 ~f:( + )))

let prop_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip (random non-negative ints)" ~count:500
    QCheck.(list (map abs int))
    (fun values ->
      let b = Util.Varint.encode_list values in
      Util.Varint.decode_all b ~pos:0 ~len:(Bytes.length b) = values)

let suite =
  [
    Alcotest.test_case "roundtrip basic" `Quick (check_roundtrip [ 0; 1; 127; 128; 300; max_int ]);
    Alcotest.test_case "roundtrip empty" `Quick (check_roundtrip []);
    Alcotest.test_case "single byte values" `Quick test_single_byte_values;
    Alcotest.test_case "size boundaries" `Quick test_boundaries;
    Alcotest.test_case "encoded_size matches encode" `Quick test_encoded_size_matches_encode;
    Alcotest.test_case "negative rejected" `Quick test_negative_rejected;
    Alcotest.test_case "truncated input" `Quick test_truncated_input;
    Alcotest.test_case "decode advances position" `Quick test_decode_position;
    Alcotest.test_case "fold" `Quick test_fold_skips_list_building;
    Alcotest.test_case "fold range check" `Quick test_fold_range_check;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
