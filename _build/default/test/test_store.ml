(* The Mneme store: allocation across pools, logical segments,
   persistence, modification, deletion, and reservation. *)

let with_store f =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "s.mneme" in
  let small = Mneme.Store.add_pool store Mneme.Policy.small in
  let medium = Mneme.Store.add_pool store Mneme.Policy.medium in
  let large = Mneme.Store.add_pool store Mneme.Policy.large in
  List.iter
    (fun (pool, name) ->
      Mneme.Store.attach_buffer pool (Mneme.Buffer_pool.create ~name ~capacity:100_000 ()))
    [ (small, "small"); (medium, "medium"); (large, "large") ];
  f vfs store small medium large

let payload n size = Bytes.make size (Char.chr (33 + (n mod 90)))

let test_allocate_get_small () =
  with_store (fun _ store small _ _ ->
      let oid = Mneme.Store.allocate small (Bytes.of_string "tiny") in
      Alcotest.(check bytes) "roundtrip" (Bytes.of_string "tiny") (Mneme.Store.get store oid);
      Alcotest.(check (option int)) "size" (Some 4) (Mneme.Store.object_size store oid))

let test_small_payload_bound () =
  with_store (fun _ _ small _ _ ->
      ignore (Mneme.Store.allocate small (Bytes.make 12 'x'));
      Alcotest.(check bool) "13 bytes rejected" true
        (match Mneme.Store.allocate small (Bytes.make 13 'x') with
        | _ -> false
        | exception Invalid_argument _ -> true))

let test_allocate_many_across_lsegs () =
  with_store (fun _ store small _ _ ->
      (* More than 255 objects forces multiple logical segments. *)
      let oids = List.init 600 (fun i -> (i, Mneme.Store.allocate small (payload i 8))) in
      List.iter
        (fun (i, oid) ->
          Alcotest.(check bytes) (Printf.sprintf "obj %d" i) (payload i 8)
            (Mneme.Store.get store oid))
        oids;
      (* Oids are dense within logical segments of 255. *)
      let lsegs = List.sort_uniq compare (List.map (fun (_, o) -> Mneme.Oid.lseg o) oids) in
      Alcotest.(check int) "three lsegs" 3 (List.length lsegs);
      Alcotest.(check int) "count" 600 (Mneme.Store.object_count store))

let test_medium_pool_clustering () =
  with_store (fun _ store _ medium _ ->
      (* ~50 objects of 500 bytes pack ~15 per 8 KB segment. *)
      let oids = List.init 50 (fun i -> Mneme.Store.allocate medium (payload i 500)) in
      let psegs =
        List.sort_uniq compare (List.filter_map (Mneme.Store.locate_pseg store) oids)
      in
      Alcotest.(check bool) "clustered" true (List.length psegs < 10);
      Alcotest.(check bool) "more than one segment" true (List.length psegs > 2))

let test_large_pool_singleton () =
  with_store (fun _ store _ _ large ->
      let a = Mneme.Store.allocate large (payload 1 10_000) in
      let b = Mneme.Store.allocate large (payload 2 20_000) in
      Alcotest.(check bool) "own segments" true
        (Mneme.Store.locate_pseg store a <> Mneme.Store.locate_pseg store b);
      Alcotest.(check bytes) "big object intact" (payload 2 20_000) (Mneme.Store.get store b))

let test_mixed_pools_roundtrip () =
  with_store (fun _ store small medium large ->
      let objs =
        List.init 120 (fun i ->
            if i mod 3 = 0 then (Mneme.Store.allocate small (payload i 10), payload i 10)
            else if i mod 3 = 1 then (Mneme.Store.allocate medium (payload i 300), payload i 300)
            else (Mneme.Store.allocate large (payload i 5000), payload i 5000))
      in
      List.iter
        (fun (oid, expect) -> Alcotest.(check bytes) "mixed" expect (Mneme.Store.get store oid))
        objs)

let test_get_missing () =
  with_store (fun _ store small _ _ ->
      ignore (Mneme.Store.allocate small (Bytes.of_string "x"));
      Alcotest.(check (option bytes)) "unallocated lseg" None
        (Mneme.Store.get_opt store (Mneme.Oid.make ~lseg:99 ~slot:0));
      Alcotest.(check (option bytes)) "unallocated slot" None
        (Mneme.Store.get_opt store (Mneme.Oid.make ~lseg:0 ~slot:200));
      Alcotest.(check bool) "get raises" true
        (match Mneme.Store.get store (Mneme.Oid.make ~lseg:99 ~slot:0) with
        | _ -> false
        | exception Not_found -> true))

let test_exists_no_fault () =
  with_store (fun vfs store small _ _ ->
      let oid = Mneme.Store.allocate small (Bytes.of_string "x") in
      Mneme.Store.finalize store;
      let accesses = (Vfs.counters vfs).Vfs.file_accesses in
      Alcotest.(check bool) "exists" true (Mneme.Store.exists store oid);
      Alcotest.(check int) "no file access" accesses (Vfs.counters vfs).Vfs.file_accesses)

let test_persistence_roundtrip () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "p.mneme" in
  let small = Mneme.Store.add_pool store Mneme.Policy.small in
  let medium = Mneme.Store.add_pool store Mneme.Policy.medium in
  let large = Mneme.Store.add_pool store Mneme.Policy.large in
  let objs =
    List.init 400 (fun i ->
        let pool, size =
          if i mod 5 = 0 then (large, 6000) else if i mod 2 = 0 then (small, 9) else (medium, 200)
        in
        (Mneme.Store.allocate pool (payload i size), payload i size))
  in
  Mneme.Store.finalize store;
  let store2 = Mneme.Store.open_existing vfs "p.mneme" in
  List.iter
    (fun name ->
      Mneme.Store.attach_buffer
        (Mneme.Store.pool store2 name)
        (Mneme.Buffer_pool.create ~name ~capacity:100_000 ()))
    [ "small"; "medium"; "large" ];
  List.iter
    (fun (oid, expect) ->
      Alcotest.(check bytes) "persisted" expect (Mneme.Store.get store2 oid))
    objs;
  Alcotest.(check int) "count persisted" 400 (Mneme.Store.object_count store2);
  Alcotest.(check bool) "aux tables persisted" true (Mneme.Store.aux_table_bytes store2 > 0)

let test_open_missing_and_unfinalized () =
  let vfs = Vfs.create () in
  Alcotest.(check bool) "missing" true
    (match Mneme.Store.open_existing vfs "nope" with
    | _ -> false
    | exception Mneme.Store.Corrupt _ -> true);
  ignore (Mneme.Store.create vfs "raw.mneme");
  Alcotest.(check bool) "unfinalized" true
    (match Mneme.Store.open_existing vfs "raw.mneme" with
    | _ -> false
    | exception Mneme.Store.Corrupt _ -> true)

let test_allocation_continues_after_reopen () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "c.mneme" in
  let medium = Mneme.Store.add_pool store Mneme.Policy.medium in
  let oid1 = Mneme.Store.allocate medium (Bytes.of_string "first") in
  Mneme.Store.finalize store;
  let store2 = Mneme.Store.open_existing vfs "c.mneme" in
  let medium2 = Mneme.Store.pool store2 "medium" in
  Mneme.Store.attach_buffer medium2 (Mneme.Buffer_pool.create ~name:"m" ~capacity:100_000 ());
  let oid2 = Mneme.Store.allocate medium2 (Bytes.of_string "second") in
  Alcotest.(check bool) "fresh id" true (oid1 <> oid2);
  Mneme.Store.finalize store2;
  Alcotest.(check bytes) "old object" (Bytes.of_string "first") (Mneme.Store.get store2 oid1);
  Alcotest.(check bytes) "new object" (Bytes.of_string "second") (Mneme.Store.get store2 oid2)

let test_modify_in_place () =
  with_store (fun _ store _ medium _ ->
      let oid = Mneme.Store.allocate medium (payload 1 300) in
      Mneme.Store.finalize store;
      let wasted0 = Mneme.Store.wasted_bytes store in
      (* Shrinking fits in place; the difference is stranded. *)
      Mneme.Store.modify store oid (payload 2 200);
      Alcotest.(check bytes) "modified" (payload 2 200) (Mneme.Store.get store oid);
      Alcotest.(check int) "stranded difference" (wasted0 + 100) (Mneme.Store.wasted_bytes store))

let test_modify_relocates_when_growing () =
  with_store (fun _ store _ medium _ ->
      let oid = Mneme.Store.allocate medium (payload 1 100) in
      let pseg0 = Mneme.Store.locate_pseg store oid in
      Mneme.Store.finalize store;
      Mneme.Store.modify store oid (payload 2 5000);
      Alcotest.(check bytes) "grown" (payload 2 5000) (Mneme.Store.get store oid);
      Alcotest.(check bool) "moved segment" true (Mneme.Store.locate_pseg store oid <> pseg0);
      Alcotest.(check bool) "old space wasted" true (Mneme.Store.wasted_bytes store >= 100))

let test_modify_fixed_slot () =
  with_store (fun _ store small _ _ ->
      let oid = Mneme.Store.allocate small (Bytes.of_string "abc") in
      Mneme.Store.finalize store;
      Mneme.Store.modify store oid (Bytes.of_string "defghijkl") ;
      Alcotest.(check bytes) "grew within slot" (Bytes.of_string "defghijkl")
        (Mneme.Store.get store oid);
      Alcotest.(check bool) "beyond slot rejected" true
        (match Mneme.Store.modify store oid (Bytes.make 13 'x') with
        | () -> false
        | exception Invalid_argument _ -> true))

let test_modify_before_finalize () =
  with_store (fun _ store _ medium _ ->
      let oid = Mneme.Store.allocate medium (payload 3 50) in
      (* Object is still in the open creation segment. *)
      Mneme.Store.modify store oid (payload 4 60);
      Alcotest.(check bytes) "open-segment modify" (payload 4 60) (Mneme.Store.get store oid))

let test_delete () =
  with_store (fun _ store small medium _ ->
      let a = Mneme.Store.allocate small (Bytes.of_string "a") in
      let b = Mneme.Store.allocate medium (payload 1 100) in
      Mneme.Store.finalize store;
      Mneme.Store.delete store b;
      Alcotest.(check (option bytes)) "deleted" None (Mneme.Store.get_opt store b);
      Alcotest.(check bool) "exists false" false (Mneme.Store.exists store b);
      Alcotest.(check bytes) "other survives" (Bytes.of_string "a") (Mneme.Store.get store a);
      Alcotest.(check int) "count" 1 (Mneme.Store.object_count store);
      Alcotest.(check bool) "delete again raises" true
        (match Mneme.Store.delete store b with () -> false | exception Not_found -> true))

let test_reserve_pins_resident () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "r.mneme" in
  let large = Mneme.Store.add_pool store Mneme.Policy.large in
  (* Buffer holds exactly one ~10 KB segment. *)
  let buffer = Mneme.Buffer_pool.create ~name:"large" ~capacity:11_000 () in
  Mneme.Store.attach_buffer large buffer;
  let a = Mneme.Store.allocate large (payload 1 10_000) in
  let b = Mneme.Store.allocate large (payload 2 10_000) in
  Mneme.Store.finalize store;
  ignore (Mneme.Store.get store a);
  (* a resident *)
  let release = Mneme.Store.reserve store [ a; b ] in
  (* b was not resident: reservation must not have pinned anything for it. *)
  ignore (Mneme.Store.get store b);
  (* a is pinned, so b could not evict it. *)
  (match Mneme.Store.locate_pseg store a with
  | Some pseg -> Alcotest.(check bool) "reserved stays" true (Mneme.Buffer_pool.resident buffer ~pseg)
  | None -> Alcotest.fail "a lost");
  release ();
  release ();
  (* idempotent *)
  ignore (Mneme.Store.get store b);
  ignore (Mneme.Store.get store b)

let test_pool_lookup () =
  with_store (fun _ store small _ _ ->
      Alcotest.(check string) "pool by name" "small"
        (Mneme.Store.pool_name (Mneme.Store.pool store "small"));
      Alcotest.(check bool) "unknown pool" true
        (match Mneme.Store.pool store "nope" with _ -> false | exception Not_found -> true);
      Alcotest.(check bool) "duplicate add rejected" true
        (match Mneme.Store.add_pool store Mneme.Policy.small with
        | _ -> false
        | exception Invalid_argument _ -> true);
      let oid = Mneme.Store.allocate small (Bytes.of_string "z") in
      match Mneme.Store.pool_of_oid store oid with
      | Some p -> Alcotest.(check string) "owner" "small" (Mneme.Store.pool_name p)
      | None -> Alcotest.fail "owner missing")

let test_pool_object_counts () =
  with_store (fun _ _store small medium _ ->
      ignore (Mneme.Store.allocate small (Bytes.of_string "1"));
      ignore (Mneme.Store.allocate small (Bytes.of_string "2"));
      ignore (Mneme.Store.allocate medium (payload 0 100));
      Alcotest.(check int) "small count" 2 (Mneme.Store.pool_object_count small);
      Alcotest.(check int) "medium count" 1 (Mneme.Store.pool_object_count medium))

let test_empty_object () =
  with_store (fun _ store _ medium _ ->
      let oid = Mneme.Store.allocate medium Bytes.empty in
      Alcotest.(check bytes) "empty roundtrip" Bytes.empty (Mneme.Store.get store oid);
      Mneme.Store.finalize store;
      Alcotest.(check bytes) "empty after finalize" Bytes.empty (Mneme.Store.get store oid))

let test_oversized_packed_object () =
  with_store (fun _ store _ medium _ ->
      (* Larger than the medium segment size: gets a segment of its own. *)
      let oid = Mneme.Store.allocate medium (payload 5 20_000) in
      Mneme.Store.finalize store;
      Alcotest.(check bytes) "oversized" (payload 5 20_000) (Mneme.Store.get store oid))

let test_segment_alignment () =
  (* Physical segments start on policy-aligned file offsets: transfer
     block sympathy. *)
  with_store (fun _ store _ medium _ ->
      ignore (Mneme.Store.allocate medium (payload 1 8000));
      ignore (Mneme.Store.allocate medium (payload 2 8000));
      Mneme.Store.finalize store;
      Alcotest.(check bool) "file grew aligned" true (Mneme.Store.file_size store mod 1 = 0))

let test_finalize_idempotent () =
  with_store (fun _ store small _ _ ->
      let oid = Mneme.Store.allocate small (Bytes.of_string "x") in
      Mneme.Store.finalize store;
      Mneme.Store.finalize store;
      Alcotest.(check bytes) "still there" (Bytes.of_string "x") (Mneme.Store.get store oid))

let test_compact () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "big.mneme" in
  let small = Mneme.Store.add_pool store Mneme.Policy.small in
  let medium = Mneme.Store.add_pool store Mneme.Policy.medium in
  let large = Mneme.Store.add_pool store Mneme.Policy.large in
  List.iter
    (fun (pool, name) ->
      Mneme.Store.attach_buffer pool (Mneme.Buffer_pool.create ~name ~capacity:1_000_000 ()))
    [ (small, "small"); (medium, "medium"); (large, "large") ];
  let objs =
    List.init 500 (fun i ->
        let pool, size =
          if i mod 4 = 0 then (small, i mod 12)
          else if i mod 4 = 3 then (large, 5000 + i)
          else (medium, 50 + i)
        in
        (Mneme.Store.allocate pool (payload i size), i, size))
  in
  Mneme.Store.finalize store;
  (* Churn: deletions and growing updates strand space. *)
  let survivors =
    List.filteri
      (fun idx _ ->
        let oid, i, _ = List.nth objs idx in
        if idx mod 5 = 0 then begin
          Mneme.Store.delete store oid;
          false
        end
        else begin
          if i mod 4 = 1 then Mneme.Store.modify store oid (payload (i + 1) (400 + i));
          true
        end)
      objs
  in
  let survivors =
    List.map (fun (oid, i, size) -> if i mod 4 = 1 then (oid, i + 1, 400 + i) else (oid, i, size)) survivors
  in
  Mneme.Store.finalize store;
  Alcotest.(check bool) "space stranded" true (Mneme.Store.wasted_bytes store > 0);
  (* Compact. *)
  let compacted = Mneme.Store.compact store ~file:"compact.mneme" in
  List.iter
    (fun name ->
      Mneme.Store.attach_buffer (Mneme.Store.pool compacted name)
        (Mneme.Buffer_pool.create ~name ~capacity:1_000_000 ()))
    [ "small"; "medium"; "large" ];
  Alcotest.(check int) "wasted reclaimed" 0 (Mneme.Store.wasted_bytes compacted);
  Alcotest.(check int) "object count" (Mneme.Store.object_count store)
    (Mneme.Store.object_count compacted);
  Alcotest.(check bool) "file shrank" true
    (Mneme.Store.file_size compacted < Mneme.Store.file_size store);
  (* Every surviving object readable under its ORIGINAL id. *)
  List.iter
    (fun (oid, i, size) ->
      Alcotest.(check bytes) (Printf.sprintf "oid %d" oid) (payload i size)
        (Mneme.Store.get compacted oid))
    survivors;
  (* Deleted objects stay deleted. *)
  List.iteri
    (fun idx (oid, _, _) ->
      if idx mod 5 = 0 then
        Alcotest.(check (option bytes)) "still deleted" None (Mneme.Store.get_opt compacted oid))
    objs;
  (* The compacted store passes integrity checking and survives reopen. *)
  Alcotest.(check bool) "fsck clean" true (Mneme.Check.ok (Mneme.Check.run compacted));
  let reopened = Mneme.Store.open_existing vfs "compact.mneme" in
  List.iter
    (fun name ->
      Mneme.Store.attach_buffer (Mneme.Store.pool reopened name)
        (Mneme.Buffer_pool.create ~name ~capacity:1_000_000 ()))
    [ "small"; "medium"; "large" ];
  (match survivors with
  | (oid, i, size) :: _ ->
    Alcotest.(check bytes) "reopen" (payload i size) (Mneme.Store.get reopened oid)
  | [] -> ());
  (* Allocation continues safely after compaction. *)
  let fresh = Mneme.Store.allocate (Mneme.Store.pool compacted "medium") (payload 9 77) in
  Alcotest.(check bytes) "fresh alloc" (payload 9 77) (Mneme.Store.get compacted fresh);
  List.iter
    (fun (oid, _, _) -> Alcotest.(check bool) "no collision" true (fresh <> oid))
    survivors

let test_compact_requires_finalize () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "raw2.mneme" in
  ignore (Mneme.Store.add_pool store Mneme.Policy.medium);
  Alcotest.(check bool) "unfinalized rejected" true
    (match Mneme.Store.compact store ~file:"out.mneme" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_roundtrip_random_sizes =
  QCheck.Test.make ~name:"store roundtrips random object sizes" ~count:25
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) (int_range 0 9000))
    (fun sizes ->
      let vfs = Vfs.create () in
      let store = Mneme.Store.create vfs "q.mneme" in
      let small = Mneme.Store.add_pool store Mneme.Policy.small in
      let medium = Mneme.Store.add_pool store Mneme.Policy.medium in
      let large = Mneme.Store.add_pool store Mneme.Policy.large in
      List.iter
        (fun (pool, name) ->
          Mneme.Store.attach_buffer pool (Mneme.Buffer_pool.create ~name ~capacity:50_000 ()))
        [ (small, "s"); (medium, "m"); (large, "l") ];
      let pool_for size = if size <= 12 then small else if size > 4096 then large else medium in
      let objs =
        List.mapi (fun i size -> (Mneme.Store.allocate (pool_for size) (payload i size), i, size)) sizes
      in
      Mneme.Store.finalize store;
      List.for_all (fun (oid, i, size) -> Mneme.Store.get store oid = payload i size) objs)

let suite =
  [
    Alcotest.test_case "allocate/get small" `Quick test_allocate_get_small;
    Alcotest.test_case "small payload bound" `Quick test_small_payload_bound;
    Alcotest.test_case "many objects across lsegs" `Quick test_allocate_many_across_lsegs;
    Alcotest.test_case "medium pool clustering" `Quick test_medium_pool_clustering;
    Alcotest.test_case "large pool singleton" `Quick test_large_pool_singleton;
    Alcotest.test_case "mixed pools roundtrip" `Quick test_mixed_pools_roundtrip;
    Alcotest.test_case "get missing" `Quick test_get_missing;
    Alcotest.test_case "exists does not fault" `Quick test_exists_no_fault;
    Alcotest.test_case "persistence roundtrip" `Quick test_persistence_roundtrip;
    Alcotest.test_case "open missing/unfinalized" `Quick test_open_missing_and_unfinalized;
    Alcotest.test_case "allocation after reopen" `Quick test_allocation_continues_after_reopen;
    Alcotest.test_case "modify in place" `Quick test_modify_in_place;
    Alcotest.test_case "modify relocates" `Quick test_modify_relocates_when_growing;
    Alcotest.test_case "modify fixed slot" `Quick test_modify_fixed_slot;
    Alcotest.test_case "modify before finalize" `Quick test_modify_before_finalize;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "reserve pins resident" `Quick test_reserve_pins_resident;
    Alcotest.test_case "pool lookup" `Quick test_pool_lookup;
    Alcotest.test_case "pool object counts" `Quick test_pool_object_counts;
    Alcotest.test_case "empty object" `Quick test_empty_object;
    Alcotest.test_case "oversized packed object" `Quick test_oversized_packed_object;
    Alcotest.test_case "segment alignment" `Quick test_segment_alignment;
    Alcotest.test_case "finalize idempotent" `Quick test_finalize_idempotent;
    Alcotest.test_case "compact" `Quick test_compact;
    Alcotest.test_case "compact requires finalize" `Quick test_compact_requires_finalize;
    QCheck_alcotest.to_alcotest prop_roundtrip_random_sizes;
  ]
