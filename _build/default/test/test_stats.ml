(* Descriptive statistics and the figure-support structures. *)

let test_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Util.Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Util.Stats.mean [||])

let test_stddev () =
  Alcotest.(check (float 1e-9)) "constant" 0.0 (Util.Stats.stddev [| 5.0; 5.0; 5.0 |]);
  Alcotest.(check (float 1e-6)) "known" 2.0 (Util.Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]);
  Alcotest.(check (float 1e-9)) "short" 0.0 (Util.Stats.stddev [| 1.0 |])

let test_percentile () =
  let xs = [| 15.0; 20.0; 35.0; 40.0; 50.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 15.0 (Util.Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 50.0 (Util.Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p50" 35.0 (Util.Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p25 interpolated" 20.0 (Util.Stats.percentile xs 25.0);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty input") (fun () ->
      ignore (Util.Stats.percentile [||] 50.0));
  Alcotest.check_raises "range" (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Util.Stats.percentile xs 101.0))

let test_percentile_unsorted_input () =
  let xs = [| 50.0; 15.0; 40.0; 20.0; 35.0 |] in
  Alcotest.(check (float 1e-9)) "sorts internally" 35.0 (Util.Stats.percentile xs 50.0)

let test_sum_int () = Alcotest.(check int) "sum" 10 (Util.Stats.sum_int [| 1; 2; 3; 4 |])

let test_log_histogram_buckets () =
  let open Util.Stats.Log_histogram in
  let h = create ~lo:4 ~buckets:6 in
  Alcotest.(check int) "below lo" 0 (bucket_of h 1);
  Alcotest.(check int) "at lo" 0 (bucket_of h 4);
  Alcotest.(check int) "edge 7" 0 (bucket_of h 7);
  Alcotest.(check int) "edge 8" 1 (bucket_of h 8);
  Alcotest.(check int) "16" 2 (bucket_of h 16);
  Alcotest.(check int) "clamp huge" 5 (bucket_of h 1_000_000)

let test_log_histogram_counts () =
  let open Util.Stats.Log_histogram in
  let h = create ~lo:4 ~buckets:4 in
  add h 5;
  add h 6;
  add_weighted h 20 ~weight:3;
  Alcotest.(check int) "bucket 0" 2 (count h 0);
  Alcotest.(check int) "bucket 2" 3 (count h 2);
  Alcotest.(check int) "total" 5 (total h);
  Alcotest.(check int) "buckets" 4 (buckets h);
  Alcotest.(check int) "lower bound 2" 16 (lower_bound h 2);
  Alcotest.(check int) "lower bound 0" 0 (lower_bound h 0)

let test_log_histogram_validation () =
  Alcotest.check_raises "lo" (Invalid_argument "Log_histogram.create: lo must be positive")
    (fun () -> ignore (Util.Stats.Log_histogram.create ~lo:0 ~buckets:3));
  Alcotest.check_raises "buckets"
    (Invalid_argument "Log_histogram.create: buckets must be positive") (fun () ->
      ignore (Util.Stats.Log_histogram.create ~lo:4 ~buckets:0))

let test_cumulative_points () =
  let open Util.Stats.Cumulative in
  let c = create () in
  add c ~value:10 ~weight:1;
  add c ~value:5 ~weight:1;
  add c ~value:10 ~weight:2;
  let pts = points c in
  Alcotest.(check int) "two distinct values" 2 (List.length pts);
  (match pts with
  | [ (5, f1); (10, f2) ] ->
    Alcotest.(check (float 1e-9)) "first fraction" 0.25 f1;
    Alcotest.(check (float 1e-9)) "last fraction" 1.0 f2
  | _ -> Alcotest.fail "unexpected points");
  Alcotest.(check (float 1e-9)) "fraction_le mid" 0.25 (fraction_le c 7);
  Alcotest.(check (float 1e-9)) "fraction_le below" 0.0 (fraction_le c 1);
  Alcotest.(check (float 1e-9)) "fraction_le above" 1.0 (fraction_le c 100)

let test_cumulative_empty () =
  let c = Util.Stats.Cumulative.create () in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Util.Stats.Cumulative.fraction_le c 10);
  Alcotest.(check int) "no points" 0 (List.length (Util.Stats.Cumulative.points c))

let test_cumulative_byte_weighting () =
  (* Figure 1's second curve: weight = the record size itself. *)
  let c = Util.Stats.Cumulative.create () in
  List.iter (fun v -> Util.Stats.Cumulative.add c ~value:v ~weight:v) [ 10; 90 ];
  Alcotest.(check (float 1e-9)) "small record is 10% of bytes" 0.1
    (Util.Stats.Cumulative.fraction_le c 10)

let prop_cumulative_monotone =
  QCheck.Test.make ~name:"cumulative points are monotone" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (int_range 1 1000))
    (fun values ->
      let c = Util.Stats.Cumulative.create () in
      List.iter (fun v -> Util.Stats.Cumulative.add c ~value:v ~weight:1) values;
      let pts = Util.Stats.Cumulative.points c in
      let rec monotone = function
        | (v1, f1) :: ((v2, f2) :: _ as rest) -> v1 < v2 && f1 <= f2 && monotone rest
        | [ (_, f) ] -> Float.abs (f -. 1.0) < 1e-9
        | [] -> values = []
      in
      monotone pts)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile unsorted" `Quick test_percentile_unsorted_input;
    Alcotest.test_case "sum_int" `Quick test_sum_int;
    Alcotest.test_case "log histogram buckets" `Quick test_log_histogram_buckets;
    Alcotest.test_case "log histogram counts" `Quick test_log_histogram_counts;
    Alcotest.test_case "log histogram validation" `Quick test_log_histogram_validation;
    Alcotest.test_case "cumulative points" `Quick test_cumulative_points;
    Alcotest.test_case "cumulative empty" `Quick test_cumulative_empty;
    Alcotest.test_case "cumulative byte weighting" `Quick test_cumulative_byte_weighting;
    QCheck_alcotest.to_alcotest prop_cumulative_monotone;
  ]
