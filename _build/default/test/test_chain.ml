(* Chained large objects (inter-object references). *)

let with_store f =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "ch.mneme" in
  let pool = Mneme.Store.add_pool store Mneme.Policy.medium in
  Mneme.Store.attach_buffer pool (Mneme.Buffer_pool.create ~name:"m" ~capacity:1_000_000 ());
  f vfs store pool

let value n = Bytes.init n (fun i -> Char.chr (32 + ((i * 7) mod 90)))

let test_store_fetch_roundtrip () =
  with_store (fun _ store pool ->
      List.iter
        (fun n ->
          let v = value n in
          let head = Mneme.Chain.store ~pool ~chunk_payload:100 v in
          Alcotest.(check bytes) (Printf.sprintf "%d bytes" n) v (Mneme.Chain.fetch store head);
          Alcotest.(check int) "length" n (Mneme.Chain.length store head))
        [ 0; 1; 99; 100; 101; 1000; 12345 ])

let test_chunk_count () =
  with_store (fun _ store pool ->
      let head = Mneme.Chain.store ~pool ~chunk_payload:100 (value 250) in
      Alcotest.(check int) "three chunks" 3 (Mneme.Chain.chunk_count store head);
      let single = Mneme.Chain.store ~pool ~chunk_payload:100 (value 100) in
      Alcotest.(check int) "exactly one" 1 (Mneme.Chain.chunk_count store single);
      let empty = Mneme.Chain.store ~pool ~chunk_payload:100 Bytes.empty in
      Alcotest.(check int) "empty is one chunk" 1 (Mneme.Chain.chunk_count store empty))

let test_fetch_prefix_partial_io () =
  with_store (fun vfs store pool ->
      let v = value 10_000 in
      let head = Mneme.Chain.store ~pool ~chunk_payload:500 v in
      Mneme.Store.finalize store;
      (* Incremental retrieval: a prefix reads only its chunks. *)
      let before = (Vfs.counters vfs).Vfs.bytes_read in
      let prefix = Mneme.Chain.fetch_prefix store head ~len:800 in
      let read_for_prefix = (Vfs.counters vfs).Vfs.bytes_read - before in
      Alcotest.(check bytes) "prefix bytes" (Bytes.sub v 0 800) prefix;
      Alcotest.(check bool)
        (Printf.sprintf "read %d << 10000" read_for_prefix)
        true
        (read_for_prefix < 10_000);
      (* Prefix beyond the value clamps. *)
      Alcotest.(check bytes) "overlong prefix" v (Mneme.Chain.fetch_prefix store head ~len:99_999))

let test_append_in_place () =
  with_store (fun _ store pool ->
      let head = Mneme.Chain.store ~pool ~chunk_payload:100 (value 150) in
      (* 150 = full chunk + half chunk; append tops up the tail first. *)
      let extra = Bytes.make 75 'Z' in
      Mneme.Chain.append store ~pool ~chunk_payload:100 head extra;
      let expect = Bytes.concat Bytes.empty [ value 150; extra ] in
      Alcotest.(check bytes) "appended" expect (Mneme.Chain.fetch store head);
      Alcotest.(check int) "chunks" 3 (Mneme.Chain.chunk_count store head))

let test_append_grows_chain () =
  with_store (fun _ store pool ->
      let head = Mneme.Chain.store ~pool ~chunk_payload:64 (value 64) in
      Mneme.Chain.append store ~pool ~chunk_payload:64 head (value 300);
      Alcotest.(check int) "length" 364 (Mneme.Chain.length store head);
      let expect = Bytes.concat Bytes.empty [ value 64; value 300 ] in
      Alcotest.(check bytes) "content" expect (Mneme.Chain.fetch store head))

let test_append_does_not_touch_head () =
  with_store (fun _ store pool ->
      let head = Mneme.Chain.store ~pool ~chunk_payload:50 (value 500) in
      let head_pseg = Mneme.Store.locate_pseg store head in
      Mneme.Chain.append store ~pool ~chunk_payload:50 head (value 500);
      (* Earlier chunks are untouched: the head object never relocates. *)
      Alcotest.(check bool) "head stays" true (Mneme.Store.locate_pseg store head = head_pseg))

let test_iter_chunks () =
  with_store (fun _ store pool ->
      let head = Mneme.Chain.store ~pool ~chunk_payload:100 (value 250) in
      let sizes = ref [] in
      Mneme.Chain.iter_chunks store head (fun p -> sizes := Bytes.length p :: !sizes);
      Alcotest.(check (list int)) "chunk sizes in order" [ 100; 100; 50 ] (List.rev !sizes))

let test_delete () =
  with_store (fun _ store pool ->
      let head = Mneme.Chain.store ~pool ~chunk_payload:100 (value 250) in
      let count_before = Mneme.Store.object_count store in
      Mneme.Chain.delete store head;
      Alcotest.(check int) "all chunks gone" (count_before - 3) (Mneme.Store.object_count store);
      Alcotest.(check bool) "head gone" true (Mneme.Store.get_opt store head = None))

let test_many_chains_interleaved () =
  with_store (fun _ store pool ->
      let heads =
        List.init 20 (fun i -> (i, Mneme.Chain.store ~pool ~chunk_payload:64 (value (i * 37))))
      in
      Mneme.Store.finalize store;
      List.iter
        (fun (i, head) ->
          Alcotest.(check bytes) (Printf.sprintf "chain %d" i) (value (i * 37))
            (Mneme.Chain.fetch store head))
        heads)

let test_survives_reopen () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "p.mneme" in
  let pool = Mneme.Store.add_pool store Mneme.Policy.medium in
  Mneme.Store.attach_buffer pool (Mneme.Buffer_pool.create ~name:"m" ~capacity:1_000_000 ());
  let v = value 5000 in
  let head = Mneme.Chain.store ~pool ~chunk_payload:256 v in
  Mneme.Store.finalize store;
  let store2 = Mneme.Store.open_existing vfs "p.mneme" in
  Mneme.Store.attach_buffer (Mneme.Store.pool store2 "medium")
    (Mneme.Buffer_pool.create ~name:"m" ~capacity:1_000_000 ());
  Alcotest.(check bytes) "after reopen" v (Mneme.Chain.fetch store2 head)

let test_validation () =
  with_store (fun _ store pool ->
      Alcotest.(check bool) "zero chunk payload" true
        (match Mneme.Chain.store ~pool ~chunk_payload:0 (value 10) with
        | _ -> false
        | exception Invalid_argument _ -> true);
      let head = Mneme.Chain.store ~pool ~chunk_payload:10 (value 10) in
      Alcotest.(check bool) "negative prefix" true
        (match Mneme.Chain.fetch_prefix store head ~len:(-1) with
        | _ -> false
        | exception Invalid_argument _ -> true))

let test_fixed_pool_rejected () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "f.mneme" in
  let small = Mneme.Store.add_pool store Mneme.Policy.small in
  Mneme.Store.attach_buffer small (Mneme.Buffer_pool.create ~name:"s" ~capacity:100_000 ());
  Alcotest.(check bool) "fixed-slot pool rejected" true
    (match Mneme.Chain.store ~pool:small ~chunk_payload:4 (value 3) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "store/fetch roundtrip" `Quick test_store_fetch_roundtrip;
    Alcotest.test_case "chunk count" `Quick test_chunk_count;
    Alcotest.test_case "fetch_prefix partial io" `Quick test_fetch_prefix_partial_io;
    Alcotest.test_case "append in place" `Quick test_append_in_place;
    Alcotest.test_case "append grows chain" `Quick test_append_grows_chain;
    Alcotest.test_case "append keeps head" `Quick test_append_does_not_touch_head;
    Alcotest.test_case "iter chunks" `Quick test_iter_chunks;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "many chains" `Quick test_many_chains_interleaved;
    Alcotest.test_case "survives reopen" `Quick test_survives_reopen;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "fixed pool rejected" `Quick test_fixed_pool_rejected;
  ]
