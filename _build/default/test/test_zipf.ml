(* Zipf sampler: normalisation, monotonicity, empirical frequencies. *)

let test_probabilities_sum_to_one () =
  let z = Util.Zipf.create ~n:100 ~s:1.0 in
  let sum = ref 0.0 in
  for r = 1 to 100 do
    sum := !sum +. Util.Zipf.probability z r
  done;
  Alcotest.(check bool) "sums to 1" true (Float.abs (!sum -. 1.0) < 1e-9)

let test_monotone_decreasing () =
  let z = Util.Zipf.create ~n:50 ~s:0.8 in
  for r = 1 to 49 do
    Alcotest.(check bool)
      (Printf.sprintf "p(%d) >= p(%d)" r (r + 1))
      true
      (Util.Zipf.probability z r >= Util.Zipf.probability z (r + 1))
  done

let test_zipf_law_ratio () =
  (* With s = 1, p(1)/p(2) = 2 — the rank-size constant. *)
  let z = Util.Zipf.create ~n:1000 ~s:1.0 in
  let ratio = Util.Zipf.probability z 1 /. Util.Zipf.probability z 2 in
  Alcotest.(check bool) "ratio 2" true (Float.abs (ratio -. 2.0) < 1e-9)

let test_sample_bounds () =
  let z = Util.Zipf.create ~n:30 ~s:1.2 in
  let rng = Util.Rng.create ~seed:44 in
  for _ = 1 to 2000 do
    let r = Util.Zipf.sample z rng in
    Alcotest.(check bool) "in [1, n]" true (r >= 1 && r <= 30)
  done

let test_empirical_frequency () =
  let n = 50 in
  let z = Util.Zipf.create ~n ~s:1.0 in
  let rng = Util.Rng.create ~seed:45 in
  let counts = Array.make (n + 1) 0 in
  let draws = 100000 in
  for _ = 1 to draws do
    let r = Util.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  (* Rank 1 empirical frequency within 10% of theoretical. *)
  let p1 = float_of_int counts.(1) /. float_of_int draws in
  let expect = Util.Zipf.probability z 1 in
  Alcotest.(check bool) "rank 1 frequency" true (Float.abs (p1 -. expect) /. expect < 0.1);
  (* Rank 1 drawn more than rank 10. *)
  Alcotest.(check bool) "rank order" true (counts.(1) > counts.(10))

let test_uniform_when_s_zero () =
  let z = Util.Zipf.create ~n:10 ~s:0.0 in
  for r = 1 to 10 do
    Alcotest.(check bool) "uniform" true (Float.abs (Util.Zipf.probability z r -. 0.1) < 1e-9)
  done

let test_expected_count () =
  let z = Util.Zipf.create ~n:10 ~s:1.0 in
  let e = Util.Zipf.expected_count z ~total:1000 1 in
  Alcotest.(check bool) "expected count" true (Float.abs (e -. (1000.0 *. Util.Zipf.probability z 1)) < 1e-9)

let test_validation () =
  Alcotest.check_raises "n" (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Util.Zipf.create ~n:0 ~s:1.0));
  Alcotest.check_raises "s" (Invalid_argument "Zipf.create: s must be non-negative") (fun () ->
      ignore (Util.Zipf.create ~n:5 ~s:(-0.1)))

let test_accessors () =
  let z = Util.Zipf.create ~n:42 ~s:1.5 in
  Alcotest.(check int) "n" 42 (Util.Zipf.n z);
  Alcotest.(check (float 1e-9)) "s" 1.5 (Util.Zipf.exponent z)

let test_probability_range_check () =
  let z = Util.Zipf.create ~n:5 ~s:1.0 in
  Alcotest.check_raises "rank 0" (Invalid_argument "Zipf.probability: rank out of range")
    (fun () -> ignore (Util.Zipf.probability z 0));
  Alcotest.check_raises "rank 6" (Invalid_argument "Zipf.probability: rank out of range")
    (fun () -> ignore (Util.Zipf.probability z 6))

let suite =
  [
    Alcotest.test_case "probabilities sum to 1" `Quick test_probabilities_sum_to_one;
    Alcotest.test_case "monotone decreasing" `Quick test_monotone_decreasing;
    Alcotest.test_case "zipf ratio" `Quick test_zipf_law_ratio;
    Alcotest.test_case "sample bounds" `Quick test_sample_bounds;
    Alcotest.test_case "empirical frequency" `Quick test_empirical_frequency;
    Alcotest.test_case "uniform at s=0" `Quick test_uniform_when_s_zero;
    Alcotest.test_case "expected count" `Quick test_expected_count;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "probability range" `Quick test_probability_range_check;
  ]
