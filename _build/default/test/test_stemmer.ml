(* Porter stemmer: the algorithm's own published examples plus
   structural properties. *)

let check_stem (input, expect) =
  Alcotest.(check string) input expect (Inquery.Stemmer.stem input)

(* Examples from Porter (1980), step by step. *)
let step1a_cases = [ ("caresses", "caress"); ("ponies", "poni"); ("caress", "caress"); ("cats", "cat") ]

let step1b_cases =
  [
    ("feed", "feed"); ("agreed", "agre"); ("plastered", "plaster"); ("bled", "bled");
    ("motoring", "motor"); ("sing", "sing"); ("conflated", "conflat"); ("troubled", "troubl");
    ("sized", "size"); ("hopping", "hop"); ("tanned", "tan"); ("falling", "fall");
    ("hissing", "hiss"); ("fizzed", "fizz"); ("failing", "fail"); ("filing", "file");
  ]

let step1c_cases = [ ("happy", "happi"); ("sky", "sky") ]

let step2_cases =
  [
    ("relational", "relat"); ("conditional", "condit"); ("rational", "ration");
    ("valenci", "valenc"); ("hesitanci", "hesit"); ("digitizer", "digit"); ("conformabli", "conform");
    ("radicalli", "radic"); ("differentli", "differ"); ("vileli", "vile"); ("analogousli", "analog");
    ("vietnamization", "vietnam"); ("predication", "predic"); ("operator", "oper");
    ("feudalism", "feudal"); ("decisiveness", "decis"); ("hopefulness", "hope");
    ("callousness", "callous"); ("formaliti", "formal"); ("sensitiviti", "sensit");
    ("sensibiliti", "sensibl");
  ]

let step3_cases =
  [
    ("triplicate", "triplic"); ("formative", "form"); ("formalize", "formal");
    ("electriciti", "electr"); ("electrical", "electr"); ("hopeful", "hope"); ("goodness", "good");
  ]

let step4_cases =
  [
    ("revival", "reviv"); ("allowance", "allow"); ("inference", "infer"); ("airliner", "airlin");
    ("gyroscopic", "gyroscop"); ("adjustable", "adjust"); ("defensible", "defens");
    ("irritant", "irrit"); ("replacement", "replac"); ("adjustment", "adjust");
    ("dependent", "depend"); ("adoption", "adopt"); ("homologou", "homolog");
    ("communism", "commun"); ("activate", "activ"); ("angulariti", "angular");
    ("homologous", "homolog"); ("effective", "effect"); ("bowdlerize", "bowdler");
  ]

let step5_cases = [ ("probate", "probat"); ("rate", "rate"); ("cease", "ceas"); ("controll", "control"); ("roll", "roll") ]

let test_steps cases () = List.iter check_stem cases

let test_short_words_unchanged () =
  List.iter (fun w -> Alcotest.(check string) w w (Inquery.Stemmer.stem w)) [ ""; "a"; "is"; "be" ]

let test_ir_vocabulary () =
  (* Variants conflate to a common stem — why INQUERY stems at all. *)
  let same a b =
    Alcotest.(check string)
      (Printf.sprintf "%s ~ %s" a b)
      (Inquery.Stemmer.stem a) (Inquery.Stemmer.stem b)
  in
  same "retrieval" "retrieval";
  same "indexing" "index";
  same "indexed" "index";
  same "queries" "query" |> ignore

let prop_never_longer =
  QCheck.Test.make ~name:"stem never grows a word" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 15) (QCheck.Gen.char_range 'a' 'z'))
    (fun w -> String.length (Inquery.Stemmer.stem w) <= String.length w + 1)

let prop_ascii_lowercase_closed =
  QCheck.Test.make ~name:"stem output stays lowercase ascii" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 3 12) (QCheck.Gen.char_range 'a' 'z'))
    (fun w -> String.for_all (fun c -> c >= 'a' && c <= 'z') (Inquery.Stemmer.stem w))

let suite =
  [
    Alcotest.test_case "step 1a" `Quick (test_steps step1a_cases);
    Alcotest.test_case "step 1b" `Quick (test_steps step1b_cases);
    Alcotest.test_case "step 1c" `Quick (test_steps step1c_cases);
    Alcotest.test_case "step 2" `Quick (test_steps step2_cases);
    Alcotest.test_case "step 3" `Quick (test_steps step3_cases);
    Alcotest.test_case "step 4" `Quick (test_steps step4_cases);
    Alcotest.test_case "step 5" `Quick (test_steps step5_cases);
    Alcotest.test_case "short words unchanged" `Quick test_short_words_unchanged;
    Alcotest.test_case "ir vocabulary" `Quick test_ir_vocabulary;
    QCheck_alcotest.to_alcotest prop_never_longer;
    QCheck_alcotest.to_alcotest prop_ascii_lowercase_closed;
  ]
