(* Table rendering. *)

let test_render_alignment () =
  let t = Util.Tables.create ~columns:[ ("Name", Util.Tables.Left); ("N", Util.Tables.Right) ] in
  Util.Tables.add_row t [ "a"; "1" ];
  Util.Tables.add_row t [ "long"; "100" ];
  let out = Util.Tables.render t in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: _rule :: row1 :: row2 :: _ ->
    Alcotest.(check string) "header" "Name    N" header;
    Alcotest.(check string) "row1 padded" "a       1" row1;
    Alcotest.(check string) "row2" "long  100" row2
  | _ -> Alcotest.fail "unexpected line count");
  Alcotest.(check bool) "trailing newline" true (String.length out > 0 && out.[String.length out - 1] = '\n')

let test_rows_in_order () =
  let t = Util.Tables.create ~columns:[ ("X", Util.Tables.Left) ] in
  Util.Tables.add_row t [ "first" ];
  Util.Tables.add_row t [ "second" ];
  let out = Util.Tables.render t in
  let first_idx r = Str_find.find out r in
  Alcotest.(check bool) "order preserved" true (first_idx "first" < first_idx "second")

let test_cell_count_mismatch () =
  let t = Util.Tables.create ~columns:[ ("A", Util.Tables.Left); ("B", Util.Tables.Left) ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Tables.add_row: cell count mismatch")
    (fun () -> Util.Tables.add_row t [ "only one" ])

let test_separator () =
  let t = Util.Tables.create ~columns:[ ("A", Util.Tables.Left) ] in
  Util.Tables.add_row t [ "x" ];
  Util.Tables.add_separator t;
  Util.Tables.add_row t [ "y" ];
  let lines = String.split_on_char '\n' (Util.Tables.render t) in
  Alcotest.(check int) "line count (header, rule, x, rule, y, trailing)" 6 (List.length lines)

let test_formatters () =
  Alcotest.(check string) "float default" "3.14" (Util.Tables.fmt_float 3.14159);
  Alcotest.(check string) "float decimals" "3.1" (Util.Tables.fmt_float ~decimals:1 3.14159);
  Alcotest.(check string) "pct" "37%" (Util.Tables.fmt_pct 0.37);
  Alcotest.(check string) "kbytes rounds up" "2" (Util.Tables.fmt_kbytes 1025);
  Alcotest.(check string) "kbytes exact" "1" (Util.Tables.fmt_kbytes 1024);
  Alcotest.(check string) "kbytes zero" "0" (Util.Tables.fmt_kbytes 0)

let suite =
  [
    Alcotest.test_case "render alignment" `Quick test_render_alignment;
    Alcotest.test_case "rows in order" `Quick test_rows_in_order;
    Alcotest.test_case "cell count mismatch" `Quick test_cell_count_mismatch;
    Alcotest.test_case "separator" `Quick test_separator;
    Alcotest.test_case "formatters" `Quick test_formatters;
  ]
