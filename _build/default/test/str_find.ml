(* Tiny substring-search helper shared by the test modules (the Str
   library is not linked). *)

let find haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i =
    if i + nl > hl then raise Not_found
    else if String.sub haystack i nl = needle then i
    else go (i + 1)
  in
  go 0

let contains haystack needle =
  match find haystack needle with _ -> true | exception Not_found -> false
