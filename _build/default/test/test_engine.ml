(* The integrated engine: query execution, reservation, CPU charging. *)

let model =
  Collections.Docmodel.make ~name:"eng" ~n_docs:400 ~core_vocab:1200 ~mean_doc_len:60.0
    ~hapax_prob:0.02 ~seed:61 ()

let prepared = lazy (Core.Experiment.prepare model)

let engine version = Core.Experiment.open_engine (Lazy.force prepared) version

let test_results_identical_across_backends () =
  let queries =
    [ "ba"; "#sum( ba be bi )"; "#and( ba #or( be bo ) )"; "#wsum( 2 ba 1 bu )";
      "#phrase( ba be )" ]
  in
  let run version =
    let e = engine version in
    List.map
      (fun q ->
        (Core.Engine.run_query_string ~top_k:20 e q).Core.Engine.ranked
        |> List.map (fun r -> (r.Inquery.Ranking.doc, Printf.sprintf "%.9f" r.Inquery.Ranking.score)))
      queries
  in
  let bt = run Core.Experiment.Btree in
  let mc = run Core.Experiment.Mneme_cache in
  let mn = run Core.Experiment.Mneme_no_cache in
  Alcotest.(check bool) "btree = mneme cache" true (bt = mc);
  Alcotest.(check bool) "btree = mneme nocache" true (bt = mn)

let test_engine_cpu_charged () =
  let p = Lazy.force prepared in
  let e = engine Core.Experiment.Btree in
  let clock = Vfs.clock p.Core.Experiment.vfs in
  let before = (Vfs.Clock.snapshot clock).Vfs.Clock.engine_cpu_ms in
  ignore (Core.Engine.run_query_string e "#sum( ba be )");
  let after = (Vfs.Clock.snapshot clock).Vfs.Clock.engine_cpu_ms in
  Alcotest.(check bool) "cpu charged" true (after > before)

let test_run_batch_order () =
  let e = engine Core.Experiment.Mneme_cache in
  let results = Core.Engine.run_batch e [ "ba"; "be" ] in
  Alcotest.(check int) "two results" 2 (List.length results)

let test_invalid_query_raises () =
  let e = engine Core.Experiment.Mneme_cache in
  Alcotest.(check bool) "syntax error" true
    (match Core.Engine.run_query_string e "#and(" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_store_accessor () =
  let e = engine Core.Experiment.Mneme_cache in
  Alcotest.(check string) "store name" "mneme-cache" (Core.Engine.store e).Core.Index_store.name

let test_reservation_pins_during_query () =
  (* With reservation on, a repeated-term query over a tight buffer
     keeps its records resident; measured indirectly: reserve-on never
     does more I/O than reserve-off on the same session sequence. *)
  let p = Lazy.force prepared in
  let tight =
    Core.Buffer_sizing.with_large
      (Core.Experiment.default_buffers p)
      (p.Core.Experiment.largest_record * 5 / 4)
  in
  let io reserve =
    Vfs.purge_os_cache p.Core.Experiment.vfs;
    let store =
      Core.Mneme_backend.open_session p.Core.Experiment.vfs ~file:p.Core.Experiment.mneme_file
        ~buffers:tight
    in
    let catalog = Core.Catalog.load p.Core.Experiment.vfs ~file:p.Core.Experiment.catalog_file in
    let e =
      Core.Engine.create ~vfs:p.Core.Experiment.vfs ~store ~dict:catalog.Core.Catalog.dict
        ~n_docs:catalog.Core.Catalog.n_docs
        ~avg_doc_len:(Core.Catalog.avg_doc_length catalog)
        ~doc_len:(fun d ->
          if d < 0 || d >= Array.length catalog.Core.Catalog.doc_lens then 0
          else catalog.Core.Catalog.doc_lens.(d))
        ~reserve ()
    in
    let before = (Vfs.counters p.Core.Experiment.vfs).Vfs.file_accesses in
    ignore (Core.Engine.run_batch e [ "#sum( ba be bi bo bu ca ce ci )"; "#sum( ba be bi )" ]);
    (Vfs.counters p.Core.Experiment.vfs).Vfs.file_accesses - before
  in
  let with_reserve = io true in
  let without = io false in
  Alcotest.(check bool)
    (Printf.sprintf "reserve (%d) <= no reserve (%d)" with_reserve without)
    true (with_reserve <= without)

let test_top_k_limits () =
  let e = engine Core.Experiment.Mneme_cache in
  let r = Core.Engine.run_query_string ~top_k:3 e "ba" in
  Alcotest.(check bool) "at most 3" true (List.length r.Core.Engine.ranked <= 3)

let suite =
  [
    Alcotest.test_case "results identical across backends" `Quick
      test_results_identical_across_backends;
    Alcotest.test_case "engine cpu charged" `Quick test_engine_cpu_charged;
    Alcotest.test_case "run batch" `Quick test_run_batch_order;
    Alcotest.test_case "invalid query raises" `Quick test_invalid_query_raises;
    Alcotest.test_case "store accessor" `Quick test_store_accessor;
    Alcotest.test_case "reservation helps" `Quick test_reservation_pins_during_query;
    Alcotest.test_case "top_k limits" `Quick test_top_k_limits;
  ]
