(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks: one group per paper table/figure,
   measuring the operation whose cost that table aggregates (record
   lookups for Tables 3-5, buffer faults for Table 6 and Figure 3,
   index construction paths for Table 1 and Figure 1, query-set term
   traffic for Figure 2).

   Part 2 — full reproduction: regenerates every table and figure of
   the paper on the calibrated synthetic collections (simulated 1993
   hardware), exactly as DESIGN.md's experiment index specifies.

   REPRO_SCALE (float, default 1.0) scales collection document counts;
   REPRO_SKIP_MICRO=1 skips part 1. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Fixtures for the micro-benchmarks: one small collection built into
   both backends. *)

type fixture = {
  dict : Inquery.Dictionary.t;
  tree : Btree.t;
  mneme_cache : Core.Index_store.t;
  mneme_nocache : Core.Index_store.t;
  entries : Inquery.Dictionary.entry array;
  sample_record : bytes;
  engine : Core.Engine.t;
}

let fixture =
  lazy
    (let model =
       Collections.Docmodel.make ~name:"bench" ~n_docs:1500 ~core_vocab:8000
         ~mean_doc_len:120.0 ~hapax_prob:0.012 ~seed:71 ()
     in
     let ix = Collections.Synth.build_index model in
     let dict = Inquery.Indexer.dictionary ix in
     let vfs = Vfs.create () in
     let tree = Core.Btree_backend.build vfs ~file:"b.btree" (Inquery.Indexer.to_records ix) in
     Btree.flush tree;
     ignore (Core.Mneme_backend.build vfs ~file:"b.mneme" ~dict (Inquery.Indexer.to_records ix));
     let buffers = Core.Buffer_sizing.compute ~largest_record:100_000 () in
     let mneme_cache = Core.Mneme_backend.open_session vfs ~file:"b.mneme" ~buffers in
     let mneme_nocache =
       Core.Mneme_backend.open_session vfs ~file:"b.mneme" ~buffers:Core.Buffer_sizing.no_cache
     in
     let entries = Array.make 64 (Inquery.Dictionary.intern dict "ba") in
     for i = 0 to 63 do
       entries.(i) <-
         (match Inquery.Dictionary.find dict (Collections.Synth.core_term ~rank:(1 + (i * 7))) with
         | Some e -> e
         | None -> entries.(0))
     done;
     let sample_record =
       match mneme_cache.Core.Index_store.fetch entries.(0) with
       | Some r -> r
       | None -> assert false
     in
     let store = Core.Btree_backend.open_session vfs ~file:"b.btree" in
     let engine =
       Core.Engine.create ~vfs ~store ~dict
         ~n_docs:(Inquery.Indexer.document_count ix)
         ~avg_doc_len:(Inquery.Indexer.avg_doc_length ix)
         ~doc_len:(Inquery.Indexer.doc_length ix) ()
     in
     { dict; tree; mneme_cache; mneme_nocache; entries; sample_record; engine })

let counter = ref 0

let next_entry f =
  incr counter;
  f.entries.(!counter land 63)

(* Table 1 / Figure 1: index construction and record coding. *)
let bench_table1 =
  let docs =
    lazy
      (let model =
         Collections.Docmodel.make ~name:"t1" ~n_docs:64 ~core_vocab:2000 ~mean_doc_len:100.0
           ~seed:5 ()
       in
       Array.of_seq
         (Seq.map (fun d -> d.Collections.Synth.terms) (Collections.Synth.documents model)))
  in
  [
    Test.make ~name:"index 64 synthetic docs"
      (Staged.stage (fun () ->
           let docs = Lazy.force docs in
           let ix = Inquery.Indexer.create () in
           Array.iteri (fun i terms -> Inquery.Indexer.add_document_terms ix ~doc_id:i terms) docs;
           Inquery.Indexer.posting_count ix));
    Test.make ~name:"decode sample record"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           Inquery.Postings.fold_docs f.sample_record ~init:0 ~f:(fun acc ~doc:_ ~tf -> acc + tf)));
  ]

(* Figure 2: the query-set term path — parse plus dictionary probes. *)
let bench_fig2 =
  [
    Test.make ~name:"parse structured query"
      (Staged.stage (fun () ->
           Inquery.Query.parse_exn "#wsum( 2 ba 1 #phrase( be bi ) 1 #or( bo bu ce ) )"));
    Test.make ~name:"dictionary find"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           incr counter;
           Inquery.Dictionary.find f.dict
             (Collections.Synth.core_term ~rank:(1 + (!counter land 255)))));
    Test.make ~name:"porter stem" (Staged.stage (fun () -> Inquery.Stemmer.stem "generalizations"));
  ]

(* Tables 3/4/5: the record-lookup paths of the three versions. *)
let bench_tables345 =
  [
    Test.make ~name:"btree lookup"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           Btree.lookup f.tree (next_entry f).Inquery.Dictionary.id));
    Test.make ~name:"mneme lookup, no cache"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           f.mneme_nocache.Core.Index_store.fetch (next_entry f)));
    Test.make ~name:"mneme lookup, cache"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           f.mneme_cache.Core.Index_store.fetch (next_entry f)));
    Test.make ~name:"full query (btree engine)"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           Core.Engine.run_query_string ~top_k:10 f.engine "#sum( ba be bi bo bu )"));
  ]

(* Table 6 / Figure 3: buffer manager fault path. *)
let bench_table6 =
  let buffer = lazy (Mneme.Buffer_pool.create ~name:"bench" ~capacity:(1 lsl 20) ()) in
  let seg = Bytes.make 8192 'x' in
  [
    Test.make ~name:"buffer fault (hit)"
      (Staged.stage (fun () ->
           let b = Lazy.force buffer in
           Mneme.Buffer_pool.fault b ~pseg:1 ~load:(fun () -> seg)));
    Test.make ~name:"buffer fault (miss + evict)"
      (Staged.stage (fun () ->
           let b = Lazy.force buffer in
           incr counter;
           (* 8 KB segments through a 1 MB buffer: steady-state misses. *)
           Mneme.Buffer_pool.fault b ~pseg:(2 + (!counter land 1023)) ~load:(fun () -> seg)));
  ]

(* Top-k pruning: the format-v2 skip-block + max-score DAAT path
   against exhaustive document-at-a-time evaluation. *)
let topk_query = "#sum( ba be bi bo bu ce ci co )"

let bench_topk =
  [
    Test.make ~name:"topk k=10 (pruned)"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           Core.Engine.run_topk_string ~k:10 f.engine topk_query));
    Test.make ~name:"topk k=10 (exhaustive)"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           Core.Engine.run_topk_string ~exhaustive:true ~k:10 f.engine topk_query));
    Test.make ~name:"cursor seek via skip table"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           let cur = Inquery.Postings.cursor f.sample_record in
           incr counter;
           Inquery.Postings.cursor_seek cur (1 + (!counter land 1023));
           Inquery.Postings.cur_doc cur));
  ]

let topk_summary () =
  let f = Lazy.force fixture in
  let ex = Core.Engine.run_topk_string ~exhaustive:true ~k:10 f.engine topk_query in
  let pr = Core.Engine.run_topk_string ~audit:true ~k:10 f.engine topk_query in
  Printf.printf
    "\n[topk pruning, k=10] postings decoded: exhaustive %d, pruned %d (%.2fx); blocks \
     skipped %d, seeks %d, audit passed\n"
    ex.Core.Engine.topk_postings_decoded pr.Core.Engine.topk_postings_decoded
    (float_of_int ex.Core.Engine.topk_postings_decoded
    /. float_of_int (max 1 pr.Core.Engine.topk_postings_decoded))
    pr.Core.Engine.topk_blocks_skipped pr.Core.Engine.topk_seeks

(* Cost-based planning: what a plan decision costs (header statistics
   only, records memoized), and the intersection-first executors against
   the exhaustive baseline on conjunctive / positional queries. *)
let plan_stats_of =
  lazy
    (let f = Lazy.force fixture in
     let memo = Hashtbl.create 16 in
     fun term ->
       match Hashtbl.find_opt memo term with
       | Some s -> s
       | None ->
         let s =
           match Inquery.Dictionary.find f.dict term with
           | None -> None
           | Some e -> (
             match f.mneme_cache.Core.Index_store.fetch e with
             | None -> None
             | Some r -> Some (Inquery.Postings.record_stats r))
         in
         Hashtbl.add memo term s;
         s)

let plan_and_query = "#and( ba be bi )"
let plan_phrase_query = "#phrase( ba be )"

let bench_plan =
  let parsed = lazy (Inquery.Query.parse_exn topk_query) in
  [
    Test.make ~name:"planner decide (flat, 8 terms)"
      (Staged.stage (fun () ->
           let stats_of = Lazy.force plan_stats_of in
           Inquery.Planner.decide ~stats_of ~k:10 (Lazy.force parsed)));
    Test.make ~name:"#and k=10 (intersect)"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           Core.Engine.run_topk_string ~k:10 f.engine plan_and_query));
    Test.make ~name:"#and k=10 (exhaustive)"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           Core.Engine.run_topk_string ~exhaustive:true ~k:10 f.engine plan_and_query));
    Test.make ~name:"#phrase k=10 (intersect)"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           Core.Engine.run_topk_string ~k:10 f.engine plan_phrase_query));
    Test.make ~name:"#phrase k=10 (exhaustive)"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           Core.Engine.run_topk_string ~exhaustive:true ~k:10 f.engine plan_phrase_query));
  ]

let plan_summary () =
  let f = Lazy.force fixture in
  Printf.printf "\n[query planner, k=10]\n";
  List.iter
    (fun (cls, q) ->
      let ex = Core.Engine.run_topk_string ~exhaustive:true ~k:10 f.engine q in
      let au = Core.Engine.run_topk_string ~audit:true ~k:10 f.engine q in
      Printf.printf
        "  %-12s plan %-10s bytes: exhaustive %7d, auto %7d (%.2fx), estimated %7d; audit \
         passed\n"
        cls
        (Inquery.Planner.plan_name au.Core.Engine.topk_plan)
        ex.Core.Engine.topk_bytes_read au.Core.Engine.topk_bytes_read
        (float_of_int ex.Core.Engine.topk_bytes_read
        /. float_of_int (max 1 au.Core.Engine.topk_bytes_read))
        au.Core.Engine.topk_est_bytes)
    [
      ("flat", topk_query);
      ("conjunctive", plan_and_query);
      ("phrase", plan_phrase_query);
      ("window", "#uw5( ba be )");
    ]

(* Tiered read-path caches: the probe costs the hot path pays, and a
   cold decode against its cache-served replay. *)
let bench_cache =
  let warm =
    lazy
      (let f = Lazy.force fixture in
       let bc = Util.Block_cache.create ~capacity_bytes:(1 lsl 22) ~name:"bench" () in
       (* Warm every block of the sample record under (src 0, epoch 0). *)
       let cur = Inquery.Postings.cursor ~cache:(bc, 0, 0) f.sample_record in
       while Inquery.Postings.cur_doc cur < max_int do
         Inquery.Postings.cursor_next cur
       done;
       let rc = Core.Result_cache.create ~name:"bench" () in
       Core.Result_cache.insert rc ~key:"q|k=10" ~epoch:0 ~coverage:Core.Result_cache.Full
         ~cost:512 [ (1, 0.42) ];
       (bc, rc))
  in
  [
    Test.make ~name:"block cache probe (hit)"
      (Staged.stage (fun () ->
           let bc, _ = Lazy.force warm in
           Util.Block_cache.find bc ~src:0 ~blk:0 ~epoch:0));
    Test.make ~name:"result cache probe (hit)"
      (Staged.stage (fun () ->
           let _, rc = Lazy.force warm in
           Core.Result_cache.find rc ~key:"q|k=10" ~epoch:0));
    Test.make ~name:"cursor walk, cold decode"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           let cur = Inquery.Postings.cursor f.sample_record in
           while Inquery.Postings.cur_doc cur < max_int do
             Inquery.Postings.cursor_next cur
           done));
    Test.make ~name:"cursor walk, block-cache served"
      (Staged.stage (fun () ->
           let f = Lazy.force fixture in
           let bc, _ = Lazy.force warm in
           let cur = Inquery.Postings.cursor ~cache:(bc, 0, 0) f.sample_record in
           while Inquery.Postings.cur_doc cur < max_int do
             Inquery.Postings.cursor_next cur
           done));
  ]

(* Multicore serving: the work-stealing deque ops on the executor's hot
   path, and the per-query serve cost through a parallel worker session. *)
let bench_parallel =
  let deque = lazy (Util.Wsq.create ~capacity:4096 ~dummy:(-1)) in
  [
    Test.make ~name:"wsq push+pop (owner fast path)"
      (Staged.stage (fun () ->
           let q = Lazy.force deque in
           Util.Wsq.push q 7;
           Util.Wsq.pop q));
    Test.make ~name:"wsq push+steal (thief path)"
      (Staged.stage (fun () ->
           let q = Lazy.force deque in
           Util.Wsq.push q 7;
           Util.Wsq.steal q));
  ]

let parallel_summary () =
  let model =
    Collections.Docmodel.make ~name:"par" ~n_docs:800 ~core_vocab:4000 ~mean_doc_len:100.0
      ~seed:29 ()
  in
  let prepared = Core.Experiment.prepare model in
  let _, spec = List.hd (Collections.Presets.query_sets model) in
  let queries =
    List.filteri (fun i _ -> i < 16) (Collections.Querygen.generate model spec)
  in
  let base = ref 0.0 in
  Printf.printf "\n[parallel query serving, %d queries]\n" (List.length queries);
  List.iter
    (fun domains ->
      let r =
        Core.Parallel.run_query_set ~domains ~audit:true prepared Core.Experiment.Mneme_cache
          ~queries
      in
      if domains = 1 then base := r.Core.Parallel.sim_makespan_ms;
      Printf.printf
        "  %d domain(s): makespan %8.1f sim-ms (%.2fx), serial work %8.1f sim-ms, %d steals, \
         audit passed\n"
        domains r.Core.Parallel.sim_makespan_ms
        (if r.Core.Parallel.sim_makespan_ms > 0.0 then !base /. r.Core.Parallel.sim_makespan_ms
         else 0.0)
        r.Core.Parallel.sim_serial_ms r.Core.Parallel.steals)
    [ 1; 2; 4 ]

(* Doc-partitioned scatter-gather: per-shard-count makespan (the
   slowest scatter leg), postings decoded with the global top-k bound
   threaded through the scatter vs without, and a bit-identity check of
   every merged ranking against the unsharded engine. *)
let shard_summary () =
  let model =
    Collections.Docmodel.make ~name:"shard" ~n_docs:800 ~core_vocab:4000 ~mean_doc_len:100.0
      ~seed:29 ()
  in
  let prepared = Core.Experiment.prepare model in
  let _, spec = List.hd (Collections.Presets.query_sets model) in
  let queries =
    List.filteri (fun i _ -> i < 12) (Collections.Querygen.generate model spec)
  in
  let engine = Core.Experiment.open_engine prepared Core.Experiment.Mneme_cache in
  let oracle =
    List.map
      (fun q ->
        List.map
          (fun r -> (r.Inquery.Ranking.doc, r.Inquery.Ranking.score))
          (Core.Engine.run_topk_string ~k:10 engine q).Core.Engine.topk_ranked)
      queries
  in
  let decoded_of ~global_bound shards =
    let c = Core.Shard.create ~shard_replicas:1 ~global_bound ~shards prepared in
    let makespan = ref 0.0 and decoded = ref 0 and exact = ref true in
    List.iter2
      (fun q gold ->
        match Core.Shard.run_query_string ~top_k:10 c q with
        | Error _ -> exact := false
        | Ok res ->
          makespan := !makespan +. res.Core.Shard.elapsed_ms;
          List.iter
            (fun (rep : Core.Shard.shard_report) ->
              decoded := !decoded + rep.Core.Shard.r_postings_decoded)
            res.Core.Shard.reports;
          let got =
            List.map
              (fun r -> (r.Inquery.Ranking.doc, r.Inquery.Ranking.score))
              res.Core.Shard.ranked
          in
          if (not res.Core.Shard.complete) || got <> gold then exact := false)
      queries oracle;
    (!makespan, !decoded, !exact)
  in
  let base = ref 0.0 in
  Printf.printf "\n[sharded scatter-gather, %d queries, top-10]\n" (List.length queries);
  List.iter
    (fun shards ->
      let makespan, decoded, exact = decoded_of ~global_bound:true shards in
      let _, decoded_nb, _ = decoded_of ~global_bound:false shards in
      if shards = 1 then base := makespan;
      Printf.printf
        "  %d shard(s): makespan %8.1f sim-ms (%.2fx), %7d postings decoded (%7d without \
         bound), %s\n"
        shards makespan
        (if makespan > 0.0 then !base /. makespan else 0.0)
        decoded decoded_nb
        (if exact then "bit-identical to unsharded" else "MISMATCH"))
    [ 1; 2; 4 ]

(* Snapshot isolation: what one epoch publication costs, journaled
   (sealed root + header switch in one transaction) vs unjournaled
   (in-memory publish), and what a pinned read costs over a live one.
   Each mutation benchmark runs a steady-state add+delete+gc cycle so
   the store does not grow across iterations. *)
let epoch_fixture journal =
  lazy
    (let file = if journal then "bench-epoch-j.mneme" else "bench-epoch.mneme" in
     let journal = if journal then Some (file ^ ".log") else None in
     let live = Core.Live_index.create_mneme ?journal (Vfs.create ()) ~file () in
     for i = 0 to 19 do
       ignore
         (Core.Live_index.add_document live
            (Printf.sprintf "alpha beta gamma doc%d term%d term%d" i (i mod 7) (i mod 11)))
     done;
     live)

let epoch_cycle live =
  let id = Core.Live_index.add_document live "alpha beta gamma delta epsilon" in
  ignore (Core.Live_index.delete_document live id);
  ignore (Core.Live_index.gc live)

let bench_epoch =
  let plain = epoch_fixture false in
  let journaled = epoch_fixture true in
  [
    Test.make ~name:"epoch publish cycle (unjournaled)"
      (Staged.stage (fun () -> epoch_cycle (Lazy.force plain)));
    Test.make ~name:"epoch publish cycle (journaled)"
      (Staged.stage (fun () -> epoch_cycle (Lazy.force journaled)));
    Test.make ~name:"search (latest epoch)"
      (Staged.stage (fun () -> Core.Live_index.search ~top_k:10 (Lazy.force plain) "alpha"));
    Test.make ~name:"pin + search_pinned + release"
      (Staged.stage (fun () ->
           let live = Lazy.force plain in
           let p = Core.Live_index.pin live in
           let r = Core.Live_index.search_pinned ~top_k:10 live p "alpha" in
           Core.Live_index.release live p;
           r));
  ]

(* Online ingestion: what a WAL-acknowledged add costs, a budgeted merge
   fold, and a union query with memory segments pending.  The add
   benchmark drains on backpressure so the buffer stays steady-state
   across iterations. *)
let ingest_fixture =
  lazy
    (let t = Core.Ingest.create (Vfs.create ()) ~file:"bench-ingest.mneme" () in
     for i = 0 to 19 do
       ignore
         (Core.Ingest.add_document t
            (Printf.sprintf "alpha beta gamma doc%d term%d term%d" i (i mod 7) (i mod 11)))
     done;
     t)

let bench_ingest =
  let fix = ingest_fixture in
  let budget = Mneme.Budget.create ~max_bytes:4096 () in
  [
    Test.make ~name:"add_document (WAL fsync ack)"
      (Staged.stage (fun () ->
           let t = Lazy.force fix in
           match Core.Ingest.add_document t "alpha beta gamma delta epsilon" with
           | Core.Ingest.Acked _ -> ()
           | Core.Ingest.Overloaded -> Core.Ingest.drain t));
    Test.make ~name:"add + budgeted merge step"
      (Staged.stage (fun () ->
           let t = Lazy.force fix in
           ignore (Core.Ingest.add_document t "alpha beta gamma delta epsilon");
           ignore (Core.Ingest.merge_step ~budget t)));
    Test.make ~name:"union search (segments pending)"
      (Staged.stage (fun () -> Core.Ingest.search ~top_k:10 (Lazy.force fix) "alpha"));
  ]

let ingest_summary () =
  let vfs = Vfs.create () in
  let t =
    Core.Ingest.create vfs
      ~config:{ Core.Ingest.default_config with seal_bytes = 4096 }
      ~file:"sum-ingest.mneme" ()
  in
  let model =
    Collections.Docmodel.make ~name:"ingest" ~n_docs:400 ~core_vocab:800 ~mean_doc_len:60.0
      ~seed:31 ()
  in
  let budget = Mneme.Budget.create ~max_bytes:8192 () in
  let clock = Vfs.clock vfs in
  let query_ms label t =
    (* mean simulated latency of one union query under the given state *)
    let queries = [ "alpha"; "#sum( alpha beta gamma )"; "beta" ] in
    Vfs.purge_os_cache vfs;
    let before = Vfs.Clock.snapshot clock in
    List.iter (fun q -> ignore (Core.Ingest.search ~top_k:10 t q)) queries;
    let d = Vfs.Clock.diff ~later:(Vfs.Clock.snapshot clock) ~earlier:before in
    let ms = Vfs.Clock.wall_ms d /. float_of_int (List.length queries) in
    Printf.printf "  query latency %-24s %8.3f sim-ms\n" label ms
  in
  let text_bytes = ref 0 in
  let added = ref 0 in
  let c0 = Vfs.counters vfs in
  let t0 = Vfs.Clock.snapshot clock in
  Seq.iter
    (fun doc ->
      let text = "alpha beta gamma " ^ Collections.Synth.document_text doc in
      text_bytes := !text_bytes + String.length text;
      (match Core.Ingest.add_document t text with
      | Core.Ingest.Acked _ -> incr added
      | Core.Ingest.Overloaded -> Core.Ingest.drain ~budget t);
      if !added mod 8 = 0 then ignore (Core.Ingest.merge_step ~budget t))
    (Collections.Synth.documents model);
  let ingest_ms = Vfs.Clock.wall_ms (Vfs.Clock.diff ~later:(Vfs.Clock.snapshot clock) ~earlier:t0) in
  Printf.printf "\n[online ingestion, %d documents, %d bytes of text]\n" !added !text_bytes;
  Printf.printf "  absorb throughput %26.0f docs per sim-second\n"
    (float_of_int !added /. (ingest_ms /. 1000.0));
  query_ms "(segments pending)" t;
  let d0 = Vfs.Clock.snapshot clock in
  Core.Ingest.drain ~budget t;
  let drain_ms = Vfs.Clock.wall_ms (Vfs.Clock.diff ~later:(Vfs.Clock.snapshot clock) ~earlier:d0) in
  query_ms "(drained, buffers warm)" t;
  let c1 = Vfs.diff_counters ~later:(Vfs.counters vfs) ~earlier:c0 in
  let s = Core.Ingest.stats t in
  Printf.printf
    "  merge: %d seals, %d folds, %.2fx write amplification (%d bytes written / %d text), \
     drain %.1f sim-ms\n"
    s.Core.Ingest.seals s.Core.Ingest.folds
    (float_of_int c1.Vfs.bytes_written /. float_of_int (max 1 !text_bytes))
    c1.Vfs.bytes_written !text_bytes drain_ms

let run_micro () =
  let groups =
    [
      ("table1+fig1: build & coding", bench_table1);
      ("fig2: query term path", bench_fig2);
      ("tables 3-5: lookup paths", bench_tables345);
      ("table6+fig3: buffer manager", bench_table6);
      ("topk: pruned vs exhaustive DAAT", bench_topk);
      ("plan: cost-based executor choice", bench_plan);
      ("cache: tiered read-path probes", bench_cache);
      ("parallel: work-stealing deque", bench_parallel);
      ("epoch: snapshot-isolated mutation", bench_epoch);
      ("ingest: WAL buffer & budgeted merge", bench_ingest);
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~stabilize:false () in
  let instances = Instance.[ monotonic_clock ] in
  print_endline "=== Bechamel micro-benchmarks (ns per call) ===";
  List.iter
    (fun (group, tests) ->
      Printf.printf "\n[%s]\n" group;
      let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"g" tests) in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> Printf.printf "  %-34s %12.1f ns\n" name est
          | Some [] | None -> Printf.printf "  %-34s (no estimate)\n" name)
        (List.sort compare rows))
    groups;
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let scale =
    match Sys.getenv_opt "REPRO_SCALE" with
    | Some s -> ( try float_of_string s with Failure _ -> 1.0)
    | None -> 1.0
  in
  let skip_micro = Sys.getenv_opt "REPRO_SKIP_MICRO" = Some "1" in
  if not skip_micro then begin
    run_micro ();
    topk_summary ();
    plan_summary ();
    parallel_summary ();
    shard_summary ();
    ingest_summary ()
  end;
  let progress m = Printf.eprintf "  %s\n%!" m in
  Printf.printf "=== Paper reproduction (scale %.2f, simulated 1993 hardware) ===\n%!" scale;
  let ctx = Core.Paper.create_ctx ~progress ~scale () in
  List.iter
    (fun (label, table) ->
      print_newline ();
      print_endline label;
      Util.Tables.print table)
    (Core.Paper.all ctx);
  if Sys.getenv_opt "REPRO_SKIP_ABLATIONS" <> Some "1" then begin
    Printf.printf "\n=== Ablations (design-choice studies; fixed small collection) ===\n%!";
    let actx = Core.Ablation.create ~progress () in
    List.iter
      (fun (label, table) ->
        print_newline ();
        print_endline label;
        Util.Tables.print table)
      (Core.Ablation.all actx)
  end
